"""DP-Sync reproduction: hiding update patterns in secure outsourced databases.

This library reproduces the system and evaluation of *DP-Sync: Hiding Update
Patterns in Secure Outsourced Databases with Differential Privacy* (Wang,
Bater, Nayak, Machanavajjhala -- SIGMOD 2021).

Quickstart
----------

>>> import numpy as np
>>> from repro import DPSync, ObliDB, Schema
>>> schema = Schema("events", ("sensor_id", "value"))
>>> dpsync = DPSync(schema, edb=ObliDB(), strategy="dp-timer",
...                 epsilon=0.5, period=30, rng=np.random.default_rng(0))
>>> dpsync.start([])
>>> for t in range(1, 101):
...     update = {"sensor_id": t % 5, "value": t} if t % 3 == 0 else None
...     _ = dpsync.receive(t, update)
>>> observation = dpsync.query("SELECT COUNT(*) FROM events")

The subpackages are organised as:

* :mod:`repro.core` -- the DP-Sync framework (strategies, owner, analyst);
* :mod:`repro.dp` -- differential-privacy mechanisms, composition and bounds;
* :mod:`repro.edb` -- encrypted-database substrate (ObliDB / Crypt-epsilon
  simulators, ORAM, leakage classification);
* :mod:`repro.query` -- predicates, relational plans, dummy-aware rewriting,
  execution and a small SQL front-end;
* :mod:`repro.engine` -- the scheduled-event core the simulator runs on
  (owners wake only at arrivals and self-scheduled times);
* :mod:`repro.fleet` -- multi-owner deployments: the fleet coordinator over
  a (possibly sharded, see :class:`repro.edb.router.ShardRouter`) EDB;
* :mod:`repro.workload` -- growing databases, arrival processes and the NYC
  taxi workloads;
* :mod:`repro.simulation` -- the experiment harness behind every table and
  figure of the paper;
* :mod:`repro.analysis` -- bound checks, trade-off summaries and the
  update-pattern inference attack.
"""

from repro.core.framework import DPSync
from repro.core.cache import CacheMode, LocalCache
from repro.core.analyst import Analyst, AnalystObservation
from repro.core.owner import Owner
from repro.core.update_pattern import UpdateEvent, UpdatePattern
from repro.core.strategies import (
    DPANTStrategy,
    DPTimerStrategy,
    FlushPolicy,
    OTOStrategy,
    SETStrategy,
    SURStrategy,
    SyncDecision,
    SyncStrategy,
    make_strategy,
)
from repro.edb import (
    CryptEpsilon,
    EncryptedDatabase,
    LeakageClass,
    ObliDB,
    PathORAM,
    Record,
    Schema,
    ShardRouter,
    make_dummy_record,
)
from repro.engine import Engine, EventScheduler
from repro.fleet import Deployment
from repro.query import (
    CountQuery,
    GroupByCountQuery,
    JoinCountQuery,
    Query,
    parse_query,
)
from repro.query.incremental import IncrementalTruth
from repro.workload import GrowingDatabase, generate_green_taxi, generate_yellow_cab
from repro.simulation import (
    EndToEndConfig,
    RunResult,
    Simulation,
    SimulationConfig,
    run_end_to_end,
    run_parameter_sweep,
    run_privacy_sweep,
)

__version__ = "1.0.0"

__all__ = [
    "Analyst",
    "AnalystObservation",
    "CacheMode",
    "CountQuery",
    "CryptEpsilon",
    "DPANTStrategy",
    "DPSync",
    "Deployment",
    "DPTimerStrategy",
    "EncryptedDatabase",
    "EndToEndConfig",
    "Engine",
    "EventScheduler",
    "FlushPolicy",
    "GroupByCountQuery",
    "GrowingDatabase",
    "IncrementalTruth",
    "JoinCountQuery",
    "LeakageClass",
    "LocalCache",
    "OTOStrategy",
    "ObliDB",
    "Owner",
    "PathORAM",
    "Query",
    "Record",
    "RunResult",
    "SETStrategy",
    "SURStrategy",
    "Schema",
    "ShardRouter",
    "Simulation",
    "SimulationConfig",
    "SyncDecision",
    "SyncStrategy",
    "UpdateEvent",
    "UpdatePattern",
    "__version__",
    "generate_green_taxi",
    "generate_yellow_cab",
    "make_dummy_record",
    "make_strategy",
    "parse_query",
    "run_end_to_end",
    "run_parameter_sweep",
    "run_privacy_sweep",
]
