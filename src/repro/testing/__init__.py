"""Test-harness infrastructure that ships with the library.

:mod:`repro.testing.chaos` is the deterministic fault-injection layer the
shard supervisor (:mod:`repro.fleet.supervisor`) consumes: seeded, replayable
fault schedules that turn every crash-recovery path into a differential test
case instead of an anecdote.
"""

from repro.testing.chaos import (
    FAULT_KINDS,
    PROCESS_ONLY_KINDS,
    ChaosWorkerFault,
    Fault,
    FaultSchedule,
    parse_fault_schedule,
    random_fault_schedule,
)

__all__ = [
    "FAULT_KINDS",
    "PROCESS_ONLY_KINDS",
    "ChaosWorkerFault",
    "Fault",
    "FaultSchedule",
    "parse_fault_schedule",
    "random_fault_schedule",
]
