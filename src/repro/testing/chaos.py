"""Deterministic fault injection for the self-healing shard fleet.

The paper's privacy object is the update-pattern transcript ``(t, |γ|)``;
the recovery machinery's contract is that a crashed-and-rebuilt shard is
*invisible* in every paper-level observable.  Proving that requires faults
that are reproducible, so this module models them as data:

* a :class:`Fault` names a kind, a shard, and the 1-based index of the
  shard's *mutating command* (setup / update / insert_many / query /
  register_view / ...) at which it fires;
* a :class:`FaultSchedule` is an ordered bag of pending faults the
  supervisor consumes exactly once each;
* :func:`parse_fault_schedule` reads the compact ``kind[:shard]@N`` grid
  syntax (the ``--faults`` axis), and :func:`random_fault_schedule` draws a
  schedule from a ``SeedSequence`` so chaos sweeps are replayable from a
  single integer.

Fault kinds (``FAULT_KINDS``):

``kill``
    SIGKILL the shard's worker process just before the command runs.
``delay``
    Arm the worker to oversleep its reply so the coordinator's per-command
    deadline (:class:`~repro.edb.shard_worker.ShardWorkerTimeout`) fires.
``drop``
    Arm the worker to swallow the next pipe message entirely (same
    observable: a reply deadline miss).
``raise``
    Half-apply the command to the live shard, then raise
    :class:`ChaosWorkerFault` -- a worker failing *mid-batch* with torn
    in-memory state.  Works on every executor.
``lostshm``
    Unlink the worker's published shared-memory arena segments out from
    under it, then kill it -- a vanished ``/dev/shm`` segment.
``tornsnap``
    Force a snapshot, tear it (delete its manifest), then crash the shard
    -- recovery must fall back to the previous durable generation and a
    longer replay.

``kill``/``delay``/``drop``/``lostshm`` need a worker process and are
silently skipped on the in-process executors; ``raise`` and ``tornsnap``
exercise every executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.edb.shard_worker import TransientShardError

__all__ = [
    "FAULT_KINDS",
    "PROCESS_ONLY_KINDS",
    "ChaosWorkerFault",
    "Fault",
    "FaultSchedule",
    "parse_fault_schedule",
    "random_fault_schedule",
]

#: Every recognised fault kind, in documentation order.
FAULT_KINDS: tuple[str, ...] = (
    "kill",
    "delay",
    "drop",
    "raise",
    "lostshm",
    "tornsnap",
)

#: Kinds that require a worker process (skipped on threads/serial executors).
PROCESS_ONLY_KINDS: frozenset[str] = frozenset({"kill", "delay", "drop", "lostshm"})


class ChaosWorkerFault(TransientShardError):
    """An injected mid-batch shard failure (the ``raise`` fault kind).

    Subclasses :class:`~repro.edb.shard_worker.TransientShardError`, so the
    supervisor treats it exactly like a worker death: the shard's in-memory
    state (deliberately half-mutated by the injector) is discarded and
    rebuilt from snapshot + replay.
    """

    def __init__(self, shard_index: int, command: str) -> None:
        super().__init__(
            shard_index,
            command,
            f"chaos: injected worker fault on shard {shard_index} "
            f"during {command!r} (state torn mid-batch on purpose)",
        )


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: ``kind`` fires on ``shard`` at its
    ``at_command``-th mutating command (1-based, counted per shard)."""

    kind: str
    shard: int = 0
    at_command: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.shard < 0:
            raise ValueError(f"fault shard must be >= 0, got {self.shard}")
        if self.at_command < 1:
            raise ValueError(
                f"fault at_command is 1-based, got {self.at_command}"
            )

    def spec(self) -> str:
        """The fault's ``kind[:shard]@N`` grid-syntax form."""
        shard_part = f":{self.shard}" if self.shard else ""
        return f"{self.kind}{shard_part}@{self.at_command}"


class FaultSchedule:
    """An ordered bag of pending faults, consumed exactly once each.

    The supervisor calls :meth:`pop` with ``(shard, command_index)`` before
    every mutating command; a returned fault is removed, so retries and
    replays of the same logical command never re-fire it -- which is what
    makes a bounded-retry recovery terminate.
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self._pending: list[Fault] = list(faults)
        for fault in self._pending:
            if not isinstance(fault, Fault):
                raise TypeError(f"expected Fault, got {type(fault).__name__}")

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    @property
    def pending(self) -> tuple[Fault, ...]:
        """Faults not yet fired, in schedule order."""
        return tuple(self._pending)

    def for_shard(self, shard: int) -> tuple[Fault, ...]:
        """Pending faults targeting one shard."""
        return tuple(f for f in self._pending if f.shard == shard)

    def pop(self, shard: int, command_index: int) -> Fault | None:
        """Consume the first pending fault for ``(shard, command_index)``."""
        for position, fault in enumerate(self._pending):
            if fault.shard == shard and fault.at_command == command_index:
                return self._pending.pop(position)
        return None

    def spec(self) -> str:
        """The pending schedule in ``--faults`` grid syntax."""
        return ",".join(fault.spec() for fault in self._pending)


def parse_fault_schedule(spec: str) -> FaultSchedule:
    """Parse the ``--faults`` grid syntax into a :class:`FaultSchedule`.

    Comma-separated ``kind[:shard]@N`` terms: ``kill@3`` kills shard 0's
    worker at its 3rd mutating command; ``delay:1@2,raise:0@5`` delays
    shard 1's 2nd command and tears shard 0 mid-batch at its 5th.  An empty
    or whitespace spec parses to an empty schedule.
    """
    faults: list[Fault] = []
    for term in (spec or "").split(","):
        term = term.strip()
        if not term:
            continue
        head, sep, at_part = term.partition("@")
        if not sep:
            raise ValueError(
                f"fault term {term!r} is missing '@<command>' "
                "(expected kind[:shard]@N)"
            )
        kind, colon, shard_part = head.partition(":")
        try:
            shard = int(shard_part) if colon else 0
            at_command = int(at_part)
        except ValueError as exc:
            raise ValueError(f"fault term {term!r} is malformed: {exc}") from None
        faults.append(Fault(kind=kind.strip(), shard=shard, at_command=at_command))
    return FaultSchedule(faults)


def random_fault_schedule(
    seed: int,
    n_shards: int,
    n_faults: int = 1,
    max_command: int = 8,
    kinds: Sequence[str] = FAULT_KINDS,
) -> FaultSchedule:
    """Draw a replayable schedule from a ``SeedSequence``-derived stream.

    The same ``(seed, n_shards, n_faults, max_command, kinds)`` always
    yields the same schedule, so a failing chaos sweep reproduces from the
    seed alone.
    """
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
    rng = np.random.default_rng(np.random.SeedSequence([int(seed), 0xC4A05]))
    faults = [
        Fault(
            kind=str(rng.choice(list(kinds))),
            shard=int(rng.integers(0, max(1, n_shards))),
            at_command=int(rng.integers(1, max(2, max_command + 1))),
        )
        for _ in range(n_faults)
    ]
    return FaultSchedule(faults)
