"""Generic arrival-process generators.

These produce boolean arrival indicators (one per time unit, at most one
record per unit as in the paper's model) as ``np.ndarray``\\ s of ``bool``
and attach record payloads to them.
They are used by unit tests, property tests and the ablation benchmarks to
exercise the strategies on workloads with different temporal shapes: steady
Poisson traffic, day/night diurnal traffic (like the taxi data), bursty
traffic and extremely sparse event streams (like the IoT example of the
introduction).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.edb.records import Record, Schema
from repro.workload.stream import GrowingDatabase

__all__ = [
    "poisson_arrivals",
    "diurnal_arrivals",
    "bursty_arrivals",
    "sparse_arrivals",
    "records_from_arrivals",
    "build_growing_database",
]


def poisson_arrivals(horizon: int, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Bernoulli-thinned Poisson arrivals: each unit carries a record w.p. ``rate``."""
    if horizon < 0:
        raise ValueError("horizon must be non-negative")
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be a probability in [0, 1]")
    return rng.random(horizon) < rate


def diurnal_arrivals(
    horizon: int,
    base_rate: float,
    peak_rate: float,
    period: int = 1440,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Day/night arrival pattern: the rate oscillates between base and peak.

    The instantaneous arrival probability follows a raised cosine with the
    given ``period`` (1440 minutes = one day), which is the qualitative shape
    of the taxi pickup stream.
    """
    if horizon < 0:
        raise ValueError("horizon must be non-negative")
    if not 0.0 <= base_rate <= 1.0 or not 0.0 <= peak_rate <= 1.0:
        raise ValueError("rates must be probabilities in [0, 1]")
    if period <= 0:
        raise ValueError("period must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    amplitude = (peak_rate - base_rate) / 2.0
    midpoint = (peak_rate + base_rate) / 2.0
    phase = 2.0 * math.pi * (np.arange(horizon) % period) / period
    rates = midpoint - amplitude * np.cos(phase)
    return rng.random(horizon) < rates


def bursty_arrivals(
    horizon: int,
    burst_probability: float,
    burst_length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Bursty arrivals: idle periods interleaved with solid bursts of records."""
    if horizon < 0:
        raise ValueError("horizon must be non-negative")
    if not 0.0 <= burst_probability <= 1.0:
        raise ValueError("burst_probability must be in [0, 1]")
    if burst_length <= 0:
        raise ValueError("burst_length must be positive")
    arrivals = np.zeros(horizon, dtype=bool)
    t = 0
    while t < horizon:
        if rng.random() < burst_probability:
            arrivals[t : t + burst_length] = True
            t += burst_length
        else:
            t += 1
    return arrivals


def sparse_arrivals(horizon: int, num_events: int, rng: np.random.Generator) -> np.ndarray:
    """Exactly ``num_events`` arrivals placed uniformly at random."""
    if horizon < 0:
        raise ValueError("horizon must be non-negative")
    if num_events < 0 or num_events > horizon:
        raise ValueError("num_events must lie in [0, horizon]")
    arrivals = np.zeros(horizon, dtype=bool)
    positions = rng.choice(horizon, size=num_events, replace=False)
    arrivals[positions] = True
    return arrivals


def records_from_arrivals(
    arrivals: Sequence[bool] | np.ndarray,
    schema: Schema,
    value_sampler: Callable[[int, np.random.Generator], dict],
    rng: np.random.Generator,
) -> list[Record | None]:
    """Attach record payloads to an arrival indicator sequence.

    ``value_sampler(t, rng)`` must return the field values of the record
    arriving at time unit ``t`` (1-based).
    """
    updates: list[Record | None] = []
    for index, arrived in enumerate(arrivals):
        time = index + 1
        if not arrived:
            updates.append(None)
            continue
        values = value_sampler(time, rng)
        schema.validate(values)
        updates.append(Record(values=values, arrival_time=time, table=schema.name))
    return updates


def build_growing_database(
    schema: Schema,
    arrivals: Sequence[bool] | np.ndarray,
    value_sampler: Callable[[int, np.random.Generator], dict],
    rng: np.random.Generator,
    initial: Sequence[Record] = (),
) -> GrowingDatabase:
    """Convenience: arrivals + payload sampler -> :class:`GrowingDatabase`."""
    updates = records_from_arrivals(arrivals, schema, value_sampler, rng)
    return GrowingDatabase(table=schema.name, initial=list(initial), updates=updates)
