"""CSV loader for the real NYC TLC trip-record exports.

The reproduction runs out of the box on the synthetic workloads of
:mod:`repro.workload.nyc_taxi`; users who have downloaded the real June-2020
CSVs from the TLC Trip Record project can load them with
:func:`load_taxi_csv`, which applies exactly the paper's cleaning steps and
produces the same :class:`~repro.workload.stream.GrowingDatabase` type the
simulator consumes.
"""

from __future__ import annotations

import csv
from datetime import datetime
from pathlib import Path

from repro.edb.records import Record, Schema
from repro.workload.nyc_taxi import JUNE_2020_MINUTES, clean_taxi_rows
from repro.workload.stream import GrowingDatabase

__all__ = ["load_taxi_csv"]

#: Column names used by the TLC exports (yellow and green use different ones).
_PICKUP_TIME_COLUMNS = ("tpep_pickup_datetime", "lpep_pickup_datetime", "pickup_datetime")
_PICKUP_ZONE_COLUMNS = ("PULocationID", "pulocationid", "pickup_location_id")


def load_taxi_csv(
    path: str | Path,
    schema: Schema,
    month_start: datetime = datetime(2020, 6, 1),
    horizon: int = JUNE_2020_MINUTES,
) -> GrowingDatabase:
    """Load a TLC trip-record CSV into a growing database.

    Parameters
    ----------
    path:
        Path to the CSV export.
    schema:
        Target schema (``YELLOW_SCHEMA`` or ``GREEN_SCHEMA``).
    month_start:
        Timestamp of minute 0; pickups before it or after ``horizon`` minutes
        are dropped as invalid (step 1 of the cleaning pipeline).
    horizon:
        Number of one-minute time units in the stream.
    """
    path = Path(path)
    raw_rows: list[tuple[int | None, int | None]] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ValueError(f"{path} has no CSV header")
        time_column = _find_column(reader.fieldnames, _PICKUP_TIME_COLUMNS)
        zone_column = _find_column(reader.fieldnames, _PICKUP_ZONE_COLUMNS)
        for row in reader:
            raw_rows.append(
                (
                    _parse_minute(row.get(time_column, ""), month_start),
                    _parse_zone(row.get(zone_column, "")),
                )
            )
    cleaned = clean_taxi_rows(raw_rows, horizon=horizon)
    records = [
        Record(
            values={"pickupID": zone, "pickTime": minute},
            arrival_time=minute,
            table=schema.name,
        )
        for minute, zone in cleaned
    ]
    return GrowingDatabase.from_timestamped_records(schema.name, records, horizon)


def _find_column(fieldnames: list[str], candidates: tuple[str, ...]) -> str:
    lowered = {name.lower(): name for name in fieldnames}
    for candidate in candidates:
        if candidate.lower() in lowered:
            return lowered[candidate.lower()]
    raise ValueError(
        f"none of the expected columns {candidates} found in CSV header {fieldnames}"
    )


def _parse_minute(raw: str, month_start: datetime) -> int | None:
    raw = raw.strip()
    if not raw:
        return None
    for fmt in ("%Y-%m-%d %H:%M:%S", "%Y-%m-%dT%H:%M:%S", "%m/%d/%Y %H:%M:%S"):
        try:
            stamp = datetime.strptime(raw, fmt)
            break
        except ValueError:
            continue
    else:
        return None
    delta = stamp - month_start
    minutes = int(delta.total_seconds() // 60)
    return minutes if minutes >= 0 else None


def _parse_zone(raw: str) -> int | None:
    raw = raw.strip()
    if not raw:
        return None
    try:
        return int(float(raw))
    except ValueError:
        return None
