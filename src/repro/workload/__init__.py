"""Workload substrate: growing databases, arrival processes and the taxi data.

The paper evaluates DP-Sync on the June-2020 NYC Yellow Cab and Green Boro
taxi trip records, replayed as a growing database with one-minute time units
(43,200 units in June) and at most one record per minute.  This package
provides:

* :mod:`repro.workload.stream` -- the growing-database abstraction
  (``D_0`` plus a stream of logical updates);
* :mod:`repro.workload.generator` -- generic arrival-process generators
  (Poisson, diurnal, bursty, sparse) used by tests and ablations;
* :mod:`repro.workload.nyc_taxi` -- a deterministic synthetic generator that
  reproduces the published statistics of the taxi datasets (record counts,
  sparsity, diurnal shape, pickup-zone distribution), plus the cleaning
  pipeline of Section 8;
* :mod:`repro.workload.loader` -- a CSV loader for the real TLC exports, for
  users who have downloaded them;
* :mod:`repro.workload.scenarios` -- a registry of named, reusable traffic
  scenarios (taxi, poisson, diurnal, bursty, sparse, heavy-traffic,
  multi-table-skew) that experiment grids reference by name.
"""

from repro.workload.stream import GrowingDatabase
from repro.workload.generator import (
    bursty_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
    records_from_arrivals,
    sparse_arrivals,
)
from repro.workload.nyc_taxi import (
    GREEN_SCHEMA,
    YELLOW_SCHEMA,
    clean_taxi_rows,
    generate_green_taxi,
    generate_yellow_cab,
)
from repro.workload.loader import load_taxi_csv
from repro.workload.scenarios import (
    Scenario,
    build_scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_queries,
)

__all__ = [
    "GREEN_SCHEMA",
    "GrowingDatabase",
    "Scenario",
    "YELLOW_SCHEMA",
    "build_scenario",
    "bursty_arrivals",
    "clean_taxi_rows",
    "diurnal_arrivals",
    "generate_green_taxi",
    "generate_yellow_cab",
    "get_scenario",
    "list_scenarios",
    "load_taxi_csv",
    "poisson_arrivals",
    "records_from_arrivals",
    "register_scenario",
    "scenario_queries",
    "sparse_arrivals",
]
