"""The growing-database abstraction (Section 4.1).

A growing database is an initial database ``D_0`` plus a stream of logical
updates ``U = {u_t}``, where each ``u_t`` is either a single record (the
record received at time ``t``) or ``None`` (nothing arrived).  The logical
database at time ``t`` is ``D_t = D_0 ∪ u_1 ∪ ... ∪ u_t``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.edb.records import Record

__all__ = ["GrowingDatabase"]


@dataclass
class GrowingDatabase:
    """An initial database plus a timestamped stream of logical updates.

    Attributes
    ----------
    table:
        Name of the table all records belong to.
    initial:
        ``D_0`` -- the records available before time 1.
    updates:
        ``updates[i]`` is the logical update ``u_{i+1}`` (a record or
        ``None``); its length is the stream horizon ``L``.
    """

    table: str
    initial: list[Record] = field(default_factory=list)
    updates: list[Record | None] = field(default_factory=list)

    def __post_init__(self) -> None:
        for record in self.initial:
            self._check(record, 0)
        for index, update in enumerate(self.updates):
            if update is not None:
                self._check(update, index + 1)

    def _check(self, record: Record, time: int) -> None:
        if record.is_dummy:
            raise ValueError("growing databases contain only real records")
        if record.table != self.table:
            raise ValueError(
                f"record targets table {record.table!r}, expected {self.table!r}"
            )

    # -- basic shape -----------------------------------------------------------

    @property
    def horizon(self) -> int:
        """Number of time units in the update stream (``L``)."""
        return len(self.updates)

    @property
    def total_records(self) -> int:
        """``|D_L|`` -- initial records plus all non-null updates."""
        return len(self.initial) + sum(1 for u in self.updates if u is not None)

    @property
    def occupancy(self) -> float:
        """Fraction of time units that carry a logical update."""
        if not self.updates:
            return 0.0
        return sum(1 for u in self.updates if u is not None) / len(self.updates)

    def update_indicator(self) -> list[bool]:
        """``[u_t != None]`` for t = 1..L (used by the Table 4 mechanisms)."""
        return [update is not None for update in self.updates]

    # -- views -------------------------------------------------------------------

    def update_at(self, time: int) -> Record | None:
        """The logical update ``u_t`` (time is 1-based; 0 has no update)."""
        if time <= 0 or time > len(self.updates):
            return None
        return self.updates[time - 1]

    def logical_at(self, time: int) -> list[Record]:
        """``D_t``: every record received up to and including time ``time``."""
        records = list(self.initial)
        for t in range(1, min(time, len(self.updates)) + 1):
            update = self.updates[t - 1]
            if update is not None:
                records.append(update)
        return records

    def logical_size_at(self, time: int) -> int:
        """``|D_t|`` without materializing the record list."""
        bounded = min(max(time, 0), len(self.updates))
        return len(self.initial) + sum(
            1 for u in self.updates[:bounded] if u is not None
        )

    def iter_times(self) -> Iterator[tuple[int, Record | None]]:
        """Iterate ``(t, u_t)`` for t = 1..horizon."""
        for index, update in enumerate(self.updates):
            yield index + 1, update

    def arrivals(self) -> Iterator[tuple[int, Record]]:
        """Iterate only the non-empty updates as ``(t, u_t)`` pairs.

        This is the feed the event-driven engine schedules on: on a sparse
        stream it visits each arrival once instead of probing
        :meth:`update_at` at every time unit.  Times are strictly
        increasing.
        """
        for index, update in enumerate(self.updates):
            if update is not None:
                yield index + 1, update

    def truncated(self, horizon: int) -> "GrowingDatabase":
        """A copy limited to the first ``horizon`` time units."""
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        return GrowingDatabase(
            table=self.table,
            initial=list(self.initial),
            updates=list(self.updates[:horizon]),
        )

    @classmethod
    def from_timestamped_records(
        cls, table: str, records: Sequence[Record], horizon: int
    ) -> "GrowingDatabase":
        """Build a growing database from records carrying ``arrival_time``.

        Records with ``arrival_time == 0`` form ``D_0``; at most one record
        may arrive per later time unit (matching the paper's simplification);
        a second record in the same minute raises ``ValueError`` -- the
        cleaning pipeline (:func:`repro.workload.nyc_taxi.clean_taxi_rows`)
        removes such duplicates beforehand.
        """
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        initial: list[Record] = []
        updates: list[Record | None] = [None] * horizon
        for record in records:
            t = record.arrival_time
            if t == 0:
                initial.append(record)
                continue
            if t > horizon:
                raise ValueError(f"record arrival time {t} exceeds horizon {horizon}")
            if updates[t - 1] is not None:
                raise ValueError(f"multiple records arrive at time unit {t}")
            updates[t - 1] = record
        return cls(table=table, initial=initial, updates=updates)
