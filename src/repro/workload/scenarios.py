"""Named, reusable traffic scenarios.

Experiment grids (:mod:`repro.simulation.runner`) reference workloads by
*scenario name* instead of carrying workload-construction code around: a
scenario is a named recipe that deterministically builds the per-table
:class:`~repro.workload.stream.GrowingDatabase` streams (and the evaluation
queries that make sense on them) from a ``(seed, scale)`` pair.  Because the
recipe is looked up by name inside each worker process, grid cells stay
cheap, picklable descriptions.

Built-in scenarios:

``taxi-june`` / ``taxi-yellow``
    The paper's June-2020 NYC taxi workloads (both tables / Yellow Cab only)
    with the Section 8 test queries Q1-Q3.  These reproduce
    ``repro.simulation.experiment.taxi_workloads`` bit-for-bit.
``poisson`` / ``diurnal`` / ``bursty`` / ``sparse``
    The generic arrival shapes of :mod:`repro.workload.generator` on a single
    event table.
``heavy-traffic``
    Two near-saturated streams (one record almost every time unit) -- the
    stress shape for production-scale throughput work.
``multi-table-skew``
    Three tables with wildly different occupancies (hot / warm / cold), the
    shape that exercises per-owner scheduling fairness.
``million-users``
    A near-saturated event stream drawn from a million-user id domain --
    the synthetic shape for fleet/shard scaling work (sweep ``n_owners`` /
    ``n_shards`` over it).

**Fleet partitioning.**  A fleet run splits each stream's arrivals across N
owners: :func:`partition_fleet` turns every ``{stream: GrowingDatabase}``
entry into N sub-streams of the *same table* (named ``stream#i``), using a
named partition policy from :data:`FLEET_PARTITIONS` -- ``"round-robin"``
(arrival ordinals modulo N) or ``"hash-user"`` (stable hash of the record's
``user_id``, so one user's records always land on one owner).  Partitioning
is exact: every arrival goes to exactly one owner and the union of the
sub-streams is the original stream.

Use :func:`register_scenario` to add project-specific scenarios; grids pick
them up by name immediately.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.edb.records import Record, Schema
from repro.query.ast import Query, WindowedCountQuery
from repro.query.sql import parse_query
from repro.workload.generator import (
    build_growing_database,
    bursty_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
    sparse_arrivals,
)
from repro.workload.nyc_taxi import (
    GREEN_TARGET_RECORDS,
    JUNE_2020_MINUTES,
    YELLOW_TARGET_RECORDS,
    generate_green_taxi,
    generate_yellow_cab,
)
from repro.workload.stream import GrowingDatabase

__all__ = [
    "FLEET_PARTITIONS",
    "PAPER_Q1_SQL",
    "PAPER_Q2_SQL",
    "PAPER_Q3_SQL",
    "Scenario",
    "partition_fleet",
    "partition_stream",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "build_scenario",
    "scenario_queries",
    "taxi_queries",
]

#: The paper's three test queries (Section 8, "Testing query").
PAPER_Q1_SQL = "SELECT COUNT(*) FROM YellowCab WHERE pickupID BETWEEN 50 AND 100"
PAPER_Q2_SQL = "SELECT pickupID, COUNT(*) AS PickupCnt FROM YellowCab GROUP BY pickupID"
PAPER_Q3_SQL = (
    "SELECT COUNT(*) FROM YellowCab INNER JOIN GreenTaxi "
    "ON YellowCab.pickTime = GreenTaxi.pickTime"
)

#: Builder signature: ``(seed, scale, **kwargs) -> {table: GrowingDatabase}``.
ScenarioBuilder = Callable[..., dict[str, GrowingDatabase]]


@dataclass(frozen=True)
class Scenario:
    """A named workload recipe.

    Attributes
    ----------
    name:
        Registry key; grids reference the scenario by this string.
    description:
        One-line human description (shown by ``list_scenarios`` consumers).
    builder:
        ``(seed, scale, **kwargs)`` callable producing the per-table streams.
    queries:
        Zero-argument callable producing the evaluation queries appropriate
        for the scenario's tables.
    """

    name: str
    description: str
    builder: ScenarioBuilder
    queries: Callable[[], list[Query]]


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the registry (``replace=True`` to overwrite)."""
    if scenario.name in _REGISTRY and not replace:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def list_scenarios() -> tuple[Scenario, ...]:
    """All registered scenarios, sorted by name."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def build_scenario(
    name: str, seed: int = 0, scale: float = 1.0, **kwargs
) -> dict[str, GrowingDatabase]:
    """Build the named scenario's workload tables."""
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    return get_scenario(name).builder(seed=seed, scale=scale, **kwargs)


def scenario_queries(name: str) -> list[Query]:
    """The evaluation queries of the named scenario."""
    return get_scenario(name).queries()


# ---------------------------------------------------------------------------
# Taxi scenarios (the paper's Section 8 workloads)
# ---------------------------------------------------------------------------


def taxi_queries() -> list[Query]:
    """The paper's Q1 (range count), Q2 (group-by count), Q3 (join count)."""
    return [
        parse_query(PAPER_Q1_SQL, label="Q1"),
        parse_query(PAPER_Q2_SQL, label="Q2"),
        parse_query(PAPER_Q3_SQL, label="Q3"),
    ]


def _scaled_horizon(base: int, scale: float, floor: int = 60) -> int:
    return max(floor, int(base * scale))


def _build_taxi(
    seed: int = 0, scale: float = 1.0, include_green: bool = True
) -> dict[str, GrowingDatabase]:
    horizon = _scaled_horizon(JUNE_2020_MINUTES, scale)
    yellow = generate_yellow_cab(
        rng=np.random.default_rng(seed),
        horizon=horizon,
        target_records=min(horizon, max(10, int(YELLOW_TARGET_RECORDS * scale))),
    )
    workloads: dict[str, GrowingDatabase] = {yellow.table: yellow}
    if include_green:
        green = generate_green_taxi(
            rng=np.random.default_rng(seed + 1),
            horizon=horizon,
            target_records=min(horizon, max(10, int(GREEN_TARGET_RECORDS * scale))),
        )
        workloads[green.table] = green
    return workloads


register_scenario(
    Scenario(
        name="taxi-june",
        description="June-2020 Yellow Cab + Green Boro taxi streams (paper Section 8)",
        builder=lambda seed=0, scale=1.0: _build_taxi(seed, scale, include_green=True),
        queries=taxi_queries,
    )
)

register_scenario(
    Scenario(
        name="taxi-yellow",
        description="June-2020 Yellow Cab stream only (paper sweeps, Figures 5-6)",
        builder=lambda seed=0, scale=1.0: _build_taxi(seed, scale, include_green=False),
        queries=taxi_queries,
    )
)


# ---------------------------------------------------------------------------
# Generic event scenarios
# ---------------------------------------------------------------------------

_EVENT_SCHEMA = Schema(name="Events", attributes=("sensor_id", "value"))


def _event_sampler(t: int, rng: np.random.Generator) -> dict:
    return {"sensor_id": int(rng.integers(1, 10)), "value": int(rng.integers(0, 100))}


def _event_queries(table: str = "Events") -> Callable[[], list[Query]]:
    def queries() -> list[Query]:
        return [
            parse_query(
                f"SELECT COUNT(*) FROM {table} WHERE value BETWEEN 25 AND 75",
                label="Q1",
            ),
            parse_query(
                f"SELECT sensor_id, COUNT(*) AS Cnt FROM {table} GROUP BY sensor_id",
                label="Q2",
            ),
        ]

    return queries


def _single_table(
    schema: Schema, arrivals, seed: int
) -> dict[str, GrowingDatabase]:
    payload_rng = np.random.default_rng(np.random.SeedSequence([seed, 0xFACE]))
    db = build_growing_database(schema, arrivals, _event_sampler, payload_rng)
    return {db.table: db}


def _build_poisson(
    seed: int = 0, scale: float = 1.0, rate: float = 0.3, base_horizon: int = 5_000
) -> dict[str, GrowingDatabase]:
    horizon = _scaled_horizon(base_horizon, scale)
    arrivals = poisson_arrivals(horizon, rate, np.random.default_rng(seed))
    return _single_table(_EVENT_SCHEMA, arrivals, seed)


def _build_diurnal(
    seed: int = 0,
    scale: float = 1.0,
    base_rate: float = 0.05,
    peak_rate: float = 0.7,
    base_horizon: int = 5_760,
) -> dict[str, GrowingDatabase]:
    horizon = _scaled_horizon(base_horizon, scale)
    arrivals = diurnal_arrivals(
        horizon, base_rate=base_rate, peak_rate=peak_rate, rng=np.random.default_rng(seed)
    )
    return _single_table(_EVENT_SCHEMA, arrivals, seed)


def _build_bursty(
    seed: int = 0,
    scale: float = 1.0,
    burst_probability: float = 0.01,
    burst_length: int = 40,
    base_horizon: int = 5_000,
) -> dict[str, GrowingDatabase]:
    horizon = _scaled_horizon(base_horizon, scale)
    arrivals = bursty_arrivals(
        horizon, burst_probability, burst_length, np.random.default_rng(seed)
    )
    return _single_table(_EVENT_SCHEMA, arrivals, seed)


def _build_sparse(
    seed: int = 0, scale: float = 1.0, occupancy: float = 0.01, base_horizon: int = 10_000
) -> dict[str, GrowingDatabase]:
    horizon = _scaled_horizon(base_horizon, scale)
    num_events = max(1, int(horizon * occupancy))
    arrivals = sparse_arrivals(horizon, num_events, np.random.default_rng(seed))
    return _single_table(_EVENT_SCHEMA, arrivals, seed)


register_scenario(
    Scenario(
        name="poisson",
        description="Steady Bernoulli-thinned Poisson traffic (rate 0.3)",
        builder=_build_poisson,
        queries=_event_queries(),
    )
)

register_scenario(
    Scenario(
        name="diurnal",
        description="Day/night raised-cosine traffic (base 0.05, peak 0.7)",
        builder=_build_diurnal,
        queries=_event_queries(),
    )
)

register_scenario(
    Scenario(
        name="bursty",
        description="Idle stretches interleaved with solid 40-unit bursts",
        builder=_build_bursty,
        queries=_event_queries(),
    )
)

register_scenario(
    Scenario(
        name="sparse",
        description="Extremely sparse events (1% occupancy, IoT-like)",
        builder=_build_sparse,
        queries=_event_queries(),
    )
)


def _build_sessionized(
    seed: int = 0,
    scale: float = 1.0,
    burst_probability: float = 0.02,
    burst_length: int = 25,
    base_horizon: int = 5_000,
) -> dict[str, GrowingDatabase]:
    """Bursty "session" arrivals for the windowed-count scenario.

    Sessions are modeled as solid bursts separated by idle stretches (the
    same generator as ``bursty``, tuned to shorter, more frequent sessions),
    which makes windowed counts swing between zero and the full burst rate --
    the shape that distinguishes a sliding window from a whole-history count.
    """
    horizon = _scaled_horizon(base_horizon, scale)
    arrivals = bursty_arrivals(
        horizon, burst_probability, burst_length, np.random.default_rng(seed)
    )
    return _single_table(_EVENT_SCHEMA, arrivals, seed)


def _sessionized_queries() -> list[Query]:
    """Whole-history counts plus sliding/tumbling windowed counts.

    The windowed queries carry explicit labels: two
    :class:`~repro.query.ast.WindowedCountQuery` instances otherwise share
    the default name and would collide in per-query result keying.

    Open experiment (leakage): the ``(t, |gamma|)`` update transcript is
    produced by the owner's flush schedule, which is independent of the
    analyst's window boundaries -- a window boundary never forces a flush,
    so windowed queries add no new update-pattern leakage.  Whether the
    *joint* distribution of (flush times, windowed answers) reveals more
    about session boundaries than whole-history counts do is left open; the
    grid axes here (window size vs. flush interval) are the knobs for that
    study.
    """
    return _event_queries()() + [
        WindowedCountQuery(table="Events", window=120, mode="sliding", label="QW1"),
        WindowedCountQuery(table="Events", window=240, mode="tumbling", label="QW2"),
    ]


register_scenario(
    Scenario(
        name="sessionized",
        description=(
            "Short bursty sessions with sliding/tumbling windowed counts"
        ),
        builder=_build_sessionized,
        queries=_sessionized_queries,
    )
)


# ---------------------------------------------------------------------------
# New stress scenarios
# ---------------------------------------------------------------------------


def _build_heavy_traffic(
    seed: int = 0, scale: float = 1.0, rate: float = 0.95, base_horizon: int = 4_000
) -> dict[str, GrowingDatabase]:
    """Two near-saturated streams: a record arrives almost every time unit."""
    horizon = _scaled_horizon(base_horizon, scale)
    workloads: dict[str, GrowingDatabase] = {}
    for index, table in enumerate(("HeavyA", "HeavyB")):
        schema = Schema(name=table, attributes=("sensor_id", "value"))
        child_seed = np.random.SeedSequence([seed, index])
        arrivals = poisson_arrivals(horizon, rate, np.random.default_rng(child_seed))
        payload_rng = np.random.default_rng(np.random.SeedSequence([seed, index, 0xFACE]))
        workloads[table] = build_growing_database(
            schema, arrivals, _event_sampler, payload_rng
        )
    return workloads


def _build_multi_table_skew(
    seed: int = 0, scale: float = 1.0, base_horizon: int = 6_000
) -> dict[str, GrowingDatabase]:
    """Hot / warm / cold tables with occupancies spanning two orders of magnitude."""
    horizon = _scaled_horizon(base_horizon, scale)
    shapes = (("Hot", 0.9), ("Warm", 0.15), ("Cold", 0.01))
    workloads: dict[str, GrowingDatabase] = {}
    for index, (table, rate) in enumerate(shapes):
        schema = Schema(name=table, attributes=("sensor_id", "value"))
        child_seed = np.random.SeedSequence([seed, index])
        arrivals = poisson_arrivals(horizon, rate, np.random.default_rng(child_seed))
        payload_rng = np.random.default_rng(np.random.SeedSequence([seed, index, 0xFACE]))
        workloads[table] = build_growing_database(
            schema, arrivals, _event_sampler, payload_rng
        )
    return workloads


register_scenario(
    Scenario(
        name="heavy-traffic",
        description="Two near-saturated streams (95% occupancy): throughput stress",
        builder=_build_heavy_traffic,
        queries=_event_queries("HeavyA"),
    )
)

register_scenario(
    Scenario(
        name="multi-table-skew",
        description="Hot/warm/cold tables (90% / 15% / 1% occupancy): skewed load",
        builder=_build_multi_table_skew,
        queries=_event_queries("Hot"),
    )
)


# ---------------------------------------------------------------------------
# Million-user-scale synthetic shape
# ---------------------------------------------------------------------------

_USERS_SCHEMA = Schema(name="Users", attributes=("user_id", "region", "value"))


def _build_million_users(
    seed: int = 0,
    scale: float = 1.0,
    rate: float = 0.97,
    n_users: int = 1_000_000,
    n_regions: int = 12,
    base_horizon: int = 8_000,
) -> dict[str, GrowingDatabase]:
    """A near-saturated stream drawn from a million-user id domain.

    Models the ROADMAP's "heavy traffic from millions of users" shape: the
    arrival process is almost fully occupied and every record carries a
    ``user_id`` sampled from a 10^6-sized population (so group-bys target the
    coarse ``region`` attribute, never the user id).  This is the workload
    the fleet/shard sweeps (``n_owners`` x ``n_shards``) scale against.
    """
    horizon = _scaled_horizon(base_horizon, scale)
    arrivals = poisson_arrivals(horizon, rate, np.random.default_rng(seed))
    n_users = max(1, int(n_users))
    n_regions = max(1, int(n_regions))

    def sampler(t: int, rng: np.random.Generator) -> dict:
        return {
            "user_id": int(rng.integers(1, n_users + 1)),
            "region": int(rng.integers(1, n_regions + 1)),
            "value": int(rng.integers(0, 100)),
        }

    payload_rng = np.random.default_rng(np.random.SeedSequence([seed, 0xFACE]))
    db = build_growing_database(_USERS_SCHEMA, arrivals, sampler, payload_rng)
    return {db.table: db}


def _million_user_queries() -> list[Query]:
    return [
        parse_query(
            "SELECT COUNT(*) FROM Users WHERE value BETWEEN 25 AND 75", label="Q1"
        ),
        parse_query(
            "SELECT region, COUNT(*) AS Cnt FROM Users GROUP BY region", label="Q2"
        ),
    ]


register_scenario(
    Scenario(
        name="million-users",
        description="Near-saturated stream over a 10^6 user-id domain: fleet scaling",
        builder=_build_million_users,
        queries=_million_user_queries,
    )
)


# ---------------------------------------------------------------------------
# Fleet partitioning: one arrival stream -> N owner sub-streams
# ---------------------------------------------------------------------------

#: Partition policy signature: ``(record, ordinal, n_owners) -> owner index``.
#: ``ordinal`` is the record's position in the stream (initial records first,
#: then arrivals in time order), so every policy is a deterministic, total
#: function -- each record lands on exactly one owner.
FleetPartition = Callable[[Record, int, int], int]


def _round_robin_partition(record: Record, ordinal: int, n_owners: int) -> int:
    return ordinal % n_owners


def _hash_user_partition(record: Record, ordinal: int, n_owners: int) -> int:
    """Stable content hash of the record's ``user_id`` (ordinal fallback).

    All records of one user land on one owner -- the sharding discipline a
    real multi-tenant ingestion tier uses -- while records without a
    ``user_id`` attribute degrade to round-robin.
    """
    user = record.get("user_id")
    if user is None:
        return ordinal % n_owners
    return zlib.crc32(repr(user).encode()) % n_owners


FLEET_PARTITIONS: dict[str, FleetPartition] = {
    "round-robin": _round_robin_partition,
    "hash-user": _hash_user_partition,
}


def partition_stream(
    workload: GrowingDatabase, n_owners: int, policy: str = "round-robin"
) -> list[GrowingDatabase]:
    """Split one growing database into ``n_owners`` disjoint sub-streams.

    Each sub-stream keeps the original table name and horizon; arrival
    ``u_t`` appears in exactly one sub-stream (at the same time ``t``), and
    initial records are assigned by the same policy.  The union of the
    sub-streams is therefore the original stream, which keeps fleet ground
    truth equal to the single-owner ground truth.
    """
    if n_owners < 1:
        raise ValueError("n_owners must be >= 1")
    if n_owners == 1:
        return [workload]
    try:
        partition = FLEET_PARTITIONS[policy]
    except KeyError:
        known = ", ".join(sorted(FLEET_PARTITIONS))
        raise KeyError(f"unknown fleet partition {policy!r}; known: {known}") from None
    initial: list[list[Record]] = [[] for _ in range(n_owners)]
    updates: list[list[Record | None]] = [
        [None] * workload.horizon for _ in range(n_owners)
    ]
    ordinal = 0
    for record in workload.initial:
        initial[partition(record, ordinal, n_owners)].append(record)
        ordinal += 1
    for time, record in workload.arrivals():
        updates[partition(record, ordinal, n_owners)][time - 1] = record
        ordinal += 1
    return [
        GrowingDatabase(table=workload.table, initial=init, updates=upd)
        for init, upd in zip(initial, updates)
    ]


def partition_fleet(
    workloads: Mapping[str, GrowingDatabase],
    n_owners: int,
    policy: str = "round-robin",
) -> dict[str, GrowingDatabase]:
    """Partition every stream of a scenario across ``n_owners`` fleet members.

    Stream ``S`` becomes ``S#0 ... S#{N-1}`` (same table, disjoint arrivals),
    matching the member naming of :meth:`repro.fleet.Deployment.build`.
    ``n_owners == 1`` returns the workloads unchanged.
    """
    if n_owners == 1:
        return dict(workloads)
    partitioned: dict[str, GrowingDatabase] = {}
    for stream, workload in workloads.items():
        for index, part in enumerate(partition_stream(workload, n_owners, policy)):
            partitioned[f"{stream}#{index}"] = part
    return partitioned
