"""Synthetic NYC taxi workloads and the paper's cleaning pipeline.

The paper evaluates on the June-2020 NYC Yellow Cab and Green Boro taxi trip
records (TLC Trip Record project).  Those CSVs are an external download, so
the reproduction ships a deterministic synthetic generator that matches the
published characteristics of the *cleaned* data the experiments actually
consume:

* June 2020 has 43,200 one-minute time units;
* after cleaning, 18,429 Yellow Cab and 21,300 Green Boro records remain
  (at most one per minute -- duplicates within a minute are dropped);
* each record contributes a pickup zone id (``pickupID``, TLC zones 1..265,
  heavily skewed towards a few busy zones) and its pickup minute
  (``pickTime``), which is also the time unit at which the owner receives it;
* arrivals follow a diurnal day/night pattern.

Users who have the real CSVs can load them through
:func:`repro.workload.loader.load_taxi_csv`; everything downstream is
identical.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.edb.records import Record, Schema
from repro.workload.stream import GrowingDatabase

__all__ = [
    "YELLOW_SCHEMA",
    "GREEN_SCHEMA",
    "JUNE_2020_MINUTES",
    "YELLOW_TARGET_RECORDS",
    "GREEN_TARGET_RECORDS",
    "NUM_PICKUP_ZONES",
    "clean_taxi_rows",
    "generate_yellow_cab",
    "generate_green_taxi",
]

#: Attributes used by the paper's queries: pickup zone and pickup minute.
YELLOW_SCHEMA = Schema(name="YellowCab", attributes=("pickupID", "pickTime"))
GREEN_SCHEMA = Schema(name="GreenTaxi", attributes=("pickupID", "pickTime"))

#: June 2020 expressed in one-minute time units (30 days x 24 h x 60 min).
JUNE_2020_MINUTES: int = 43_200

#: Cleaned record counts reported in Section 8.
YELLOW_TARGET_RECORDS: int = 18_429
GREEN_TARGET_RECORDS: int = 21_300

#: TLC taxi-zone ids span 1..265.
NUM_PICKUP_ZONES: int = 265


def clean_taxi_rows(
    rows: Iterable[tuple[int | None, int | None]], horizon: int = JUNE_2020_MINUTES
) -> list[tuple[int, int]]:
    """The paper's preprocessing (Section 8, "Data").

    ``rows`` are raw ``(pickup_minute, pickupID)`` pairs.  The pipeline:

    1. drops rows with missing/invalid values (out-of-range minutes or zones);
    2. deduplicates rows falling in the same minute, keeping only the first;
    3. leaves minutes with no surviving row empty (the simulator later treats
       them as null logical updates).

    Returns the surviving ``(minute, pickupID)`` pairs sorted by minute.
    """
    seen_minutes: set[int] = set()
    cleaned: list[tuple[int, int]] = []
    for minute, zone in rows:
        if minute is None or zone is None:
            continue
        if not 0 <= int(minute) <= horizon:
            continue
        if not 1 <= int(zone) <= NUM_PICKUP_ZONES:
            continue
        minute = int(minute)
        if minute in seen_minutes:
            continue
        seen_minutes.add(minute)
        cleaned.append((minute, int(zone)))
    cleaned.sort()
    return cleaned


def _zone_distribution(rng: np.random.Generator) -> np.ndarray:
    """A skewed (Zipf-like) distribution over the 265 pickup zones."""
    ranks = np.arange(1, NUM_PICKUP_ZONES + 1, dtype=float)
    weights = 1.0 / ranks**1.1
    # Randomly permute which zone gets which rank so zone ids 50-100 (Q1's
    # range) carry a realistic, non-degenerate share of the mass.
    permutation = rng.permutation(NUM_PICKUP_ZONES)
    permuted = np.empty_like(weights)
    permuted[permutation] = weights
    return permuted / permuted.sum()


def _generate_taxi_stream(
    schema: Schema,
    target_records: int,
    horizon: int,
    rng: np.random.Generator,
) -> GrowingDatabase:
    """Generate a diurnal, deduplicated taxi stream with ``target_records`` rows."""
    if target_records > horizon:
        raise ValueError("cannot place more than one record per minute")
    minutes_per_day = 1440
    minute_of_day = np.arange(horizon) % minutes_per_day
    # Diurnal weight: quiet overnight (02:00-06:00), busy during the day with
    # an evening peak -- the qualitative shape of taxi pickups.
    weights = (
        0.25
        + 0.75 * np.clip(np.sin((minute_of_day - 300) / minutes_per_day * 2 * np.pi), 0, None)
        + 0.35 * np.exp(-((minute_of_day - 1140) ** 2) / (2 * 120.0**2))
    )
    weights = weights / weights.sum()
    chosen = rng.choice(horizon, size=target_records, replace=False, p=weights)
    chosen_minutes = np.sort(chosen)

    zone_probs = _zone_distribution(rng)
    zones = rng.choice(
        np.arange(1, NUM_PICKUP_ZONES + 1), size=target_records, p=zone_probs
    )

    updates: list[Record | None] = [None] * horizon
    initial: list[Record] = []
    for minute, zone in zip(chosen_minutes, zones):
        minute = int(minute)
        values = {"pickupID": int(zone), "pickTime": minute}
        record = Record(values=values, arrival_time=minute, table=schema.name)
        if minute == 0:
            initial.append(record)
        else:
            updates[minute - 1] = record
    return GrowingDatabase(table=schema.name, initial=initial, updates=updates)


def generate_yellow_cab(
    rng: np.random.Generator | None = None,
    horizon: int = JUNE_2020_MINUTES,
    target_records: int = YELLOW_TARGET_RECORDS,
) -> GrowingDatabase:
    """Synthetic stand-in for the cleaned June-2020 Yellow Cab stream."""
    rng = rng if rng is not None else np.random.default_rng(2020_06)
    return _generate_taxi_stream(YELLOW_SCHEMA, target_records, horizon, rng)


def generate_green_taxi(
    rng: np.random.Generator | None = None,
    horizon: int = JUNE_2020_MINUTES,
    target_records: int = GREEN_TARGET_RECORDS,
) -> GrowingDatabase:
    """Synthetic stand-in for the cleaned June-2020 Green Boro taxi stream."""
    rng = rng if rng is not None else np.random.default_rng(2020_07)
    return _generate_taxi_stream(GREEN_SCHEMA, target_records, horizon, rng)


def scaled_workloads(
    scale: float,
    rng: np.random.Generator | None = None,
) -> dict[str, GrowingDatabase]:
    """Both taxi streams scaled down by ``scale`` (horizon and record counts).

    Used by tests and quick benchmark modes: ``scale=1.0`` is the paper's
    full-size workload, ``scale=0.05`` runs in a couple of seconds.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    rng = rng if rng is not None else np.random.default_rng(7)
    horizon = max(10, int(JUNE_2020_MINUTES * scale))
    yellow = generate_yellow_cab(
        rng=rng,
        horizon=horizon,
        target_records=min(horizon, int(YELLOW_TARGET_RECORDS * scale)),
    )
    green = generate_green_taxi(
        rng=rng,
        horizon=horizon,
        target_records=min(horizon, int(GREEN_TARGET_RECORDS * scale)),
    )
    return {yellow.table: yellow, green.table: green}
