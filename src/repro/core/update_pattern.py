"""Update-pattern leakage (Definition 2).

The update pattern of a SOGDB run is the transcript
``{(t, |γ_t|) : t where an update occurred}`` -- i.e. *when* the owner ran
the Update protocol and *how many* ciphertexts each update carried.  It is
the only update-side information DP-Sync allows the server to observe, and
the object the differential-privacy guarantee (Definition 5) is stated over.

This module provides the transcript container, helpers for deriving it from
an EDB's update history, and utilities used by the statistical privacy tests
(e.g. projecting a pattern onto volumes for a fixed schedule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["UpdateEvent", "UpdatePattern"]


@dataclass(frozen=True)
class UpdateEvent:
    """One entry of the update pattern: an update of ``volume`` records at ``time``."""

    time: int
    volume: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("time must be non-negative")
        if self.volume < 0:
            raise ValueError("volume must be non-negative")


@dataclass
class UpdatePattern:
    """The server-observable update transcript of a DP-Sync run."""

    events: list[UpdateEvent] = field(default_factory=list)

    def record(self, time: int, volume: int) -> UpdateEvent:
        """Append an update event (updates must be recorded in time order)."""
        if self.events and time < self.events[-1].time:
            raise ValueError(
                f"update events must be recorded in time order; got time {time} "
                f"after {self.events[-1].time}"
            )
        event = UpdateEvent(time=time, volume=volume)
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def times(self) -> tuple[int, ...]:
        """Times at which updates occurred."""
        return tuple(event.time for event in self.events)

    @property
    def volumes(self) -> tuple[int, ...]:
        """Update volumes ``|γ_t|`` in time order."""
        return tuple(event.volume for event in self.events)

    def total_volume(self) -> int:
        """Total number of ciphertexts ever outsourced."""
        return sum(event.volume for event in self.events)

    def volume_at(self, time: int) -> int:
        """Volume of the update at ``time`` (0 if no update happened then)."""
        return sum(event.volume for event in self.events if event.time == time)

    def as_tuples(self) -> tuple[tuple[int, int], ...]:
        """The pattern as ``((t, |γ_t|), ...)`` -- the paper's notation."""
        return tuple((event.time, event.volume) for event in self.events)

    def volumes_on_schedule(self, schedule: Sequence[int]) -> tuple[int, ...]:
        """Project volumes onto a fixed schedule of times.

        For strategies with data-independent schedules (SET, DP-Timer, the
        flush mechanism) the *times* carry no information; the privacy
        analysis is entirely about the volume sequence.  This helper extracts
        that sequence for statistical indistinguishability tests.
        """
        by_time = {event.time: 0 for event in self.events}
        for event in self.events:
            by_time[event.time] += event.volume
        return tuple(by_time.get(t, 0) for t in schedule)

    @classmethod
    def from_volumes(cls, pairs: Iterable[tuple[int, int]]) -> "UpdatePattern":
        """Build a pattern from ``(time, volume)`` pairs."""
        pattern = cls()
        for time, volume in sorted(pairs):
            pattern.record(time, volume)
        return pattern
