"""The data owner.

The owner is the client-side party of the SOGDB model: it receives logical
updates over time, holds the logical database, consults its synchronization
strategy every time unit and runs the EDB's Setup/Update protocols when the
strategy signals.  It also maintains the update-pattern transcript and the
per-table logical mirror used by the accuracy metrics.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.strategies.base import SyncDecision, SyncStrategy
from repro.core.update_pattern import UpdatePattern
from repro.edb.base import EncryptedDatabase
from repro.edb.records import Record, Schema

__all__ = ["Owner"]


class Owner:
    """Client-side owner of one logical table.

    Parameters
    ----------
    schema:
        Schema of the owned table; records delivered to the owner must carry
        ``record.table == schema.name``.
    strategy:
        The synchronization strategy (``Sync`` of Definition 1).
    edb:
        The encrypted database the owner outsources to.  Several owners may
        share one EDB instance: one owner per table as in the paper's join
        experiment, or several owners of the *same* table as members of a
        :class:`~repro.fleet.Deployment` fleet, each with its own strategy,
        noise stream and update-pattern transcript.
    name:
        Label distinguishing this owner within a fleet (defaults to the
        table name, which is unique in single-owner-per-table deployments).
    """

    def __init__(
        self,
        schema: Schema,
        strategy: SyncStrategy,
        edb: EncryptedDatabase,
        name: str | None = None,
    ) -> None:
        self._schema = schema
        self._strategy = strategy
        self._edb = edb
        self._name = name if name is not None else schema.name
        self._logical: list[Record] = []
        self._pattern = UpdatePattern()
        self._initialized = False
        self._current_time = 0

    # -- lifecycle -------------------------------------------------------------

    def initialize(self, initial_records: Sequence[Record] | None = None) -> None:
        """Run the setup phase with the initial database ``D_0``.

        The first owner to initialize against a shared EDB runs the Setup
        protocol; later owners (additional tables) register their initial
        outsourcing through Update at time 0, which is observationally
        equivalent for the update pattern.
        """
        if self._initialized:
            raise RuntimeError("owner already initialized")
        self._initialized = True
        initial = list(initial_records or [])
        for record in initial:
            self._check_record(record)
        self._logical.extend(initial)
        gamma0 = self._strategy.setup(initial)
        if self._edb.is_setup:
            result = self._edb.update(gamma0, time=0)
        else:
            result = self._edb.setup(gamma0, time=0)
        self._pattern.record(0, result.total_added)

    def tick(self, time: int, update: Record | None) -> SyncDecision:
        """Advance one time unit, delivering logical update ``u_t`` (or none)."""
        if not self._initialized:
            raise RuntimeError("owner must be initialized before ticking")
        if time <= self._current_time:
            raise ValueError(
                f"time must advance monotonically (got {time} after {self._current_time})"
            )
        self._current_time = time
        if update is not None:
            self._check_record(update)
            self._logical.append(update)
        decision = self._strategy.step(time, update)
        if decision.should_sync and decision.records:
            # All records of a decision target this owner's table, so the
            # batched ingestion path skips the per-record regrouping while
            # still charging the cost model once for the whole γ_t.
            result = self._edb.insert_many(
                {self.table: decision.records}, time=time
            )
            self._pattern.record(time, result.total_added)
        return decision

    # -- durability ----------------------------------------------------------

    def export_state(self) -> dict:
        """Picklable snapshot of the owner's client-side state.

        Everything except the shared EDB reference: schema, strategy (with
        its RNG, noise stream, cache and accountant), logical mirror,
        update-pattern transcript and clock.  :meth:`from_state` rebinds the
        restored state to a (restored) EDB.
        """
        state = dict(self.__dict__)
        state.pop("_edb")
        return state

    @classmethod
    def from_state(cls, state: dict, edb: EncryptedDatabase) -> "Owner":
        """Rebuild an owner from :meth:`export_state` output."""
        owner = cls.__new__(cls)
        owner.__dict__.update(state)
        owner._edb = edb
        return owner

    # -- state -------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Fleet-member label of this owner (table name when not in a fleet)."""
        return self._name

    @property
    def schema(self) -> Schema:
        """Schema of the owned table."""
        return self._schema

    @property
    def strategy(self) -> SyncStrategy:
        """The synchronization strategy in use."""
        return self._strategy

    @property
    def edb(self) -> EncryptedDatabase:
        """The encrypted database being outsourced to."""
        return self._edb

    @property
    def table(self) -> str:
        """Name of the owned table."""
        return self._schema.name

    @property
    def current_time(self) -> int:
        """Last time unit processed."""
        return self._current_time

    @property
    def logical_database(self) -> tuple[Record, ...]:
        """All real records received so far (``D_t``)."""
        return tuple(self._logical)

    @property
    def logical_size(self) -> int:
        """``|D_t|``."""
        return len(self._logical)

    @property
    def update_pattern(self) -> UpdatePattern:
        """The server-observable update transcript of this owner."""
        return self._pattern

    @property
    def logical_gap(self) -> int:
        """Records received but not yet outsourced (Section 4.5.2)."""
        return self._strategy.logical_gap

    @property
    def outsourced_table_size(self) -> int:
        """Ciphertexts (real + dummy) currently stored for this owner's table."""
        return self._edb.table_size(self.table)

    @property
    def outsourced_dummy_count(self) -> int:
        """Dummy ciphertexts currently stored for this owner's table."""
        return self._edb.table_dummy_count(self.table)

    # -- internals ----------------------------------------------------------------

    def _check_record(self, record: Record) -> None:
        if record.table != self._schema.name:
            raise ValueError(
                f"record targets table {record.table!r} but this owner manages "
                f"{self._schema.name!r}"
            )
        self._schema.validate(record.values)
