"""The DP-Sync framework facade (Figure 1).

:class:`DPSync` wires together one owner (with its schema, local cache and
synchronization strategy), an encrypted database back-end and an analyst, and
exposes the small API a downstream user needs:

>>> import numpy as np
>>> from repro import DPSync, ObliDB, Schema
>>> schema = Schema("events", ("sensor_id", "value"))
>>> dpsync = DPSync(schema, edb=ObliDB(), strategy="dp-timer", epsilon=0.5,
...                 period=30, rng=np.random.default_rng(7))
>>> dpsync.start([])                        # outsource the (empty) D_0
>>> _ = dpsync.receive(1, {"sensor_id": 3, "value": 0.7})
>>> answer = dpsync.query("SELECT COUNT(*) FROM events")

Multiple ``DPSync`` instances (one per table) may share a single EDB, which
is how the paper's join workload (Q3) is evaluated; call
:meth:`DPSync.register_sibling` on each so join ground truth sees the whole
logical database.

Since the fleet refactor, ``DPSync`` is a thin single-owner wrapper over
:class:`repro.fleet.Deployment` -- the coordinator that also scales to N
owners over a :class:`~repro.edb.router.ShardRouter` with K shards.  The
fleet differential tests pin this wrapper (``n_owners=1``, ``n_shards=1``)
bit-identical to the original facade.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.analyst import Analyst, AnalystObservation
from repro.core.owner import Owner
from repro.core.strategies.base import SyncDecision, SyncStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.core.strategies.registry import make_strategy
from repro.core.update_pattern import UpdatePattern
from repro.edb.base import EncryptedDatabase
from repro.edb.records import Record, Schema, make_dummy_record
from repro.fleet import Deployment
from repro.query.ast import Query
from repro.query.incremental import IncrementalTruth
from repro.query.sql import parse_query

__all__ = ["DPSync"]


class DPSync:
    """A DP-Sync deployment for one logical table.

    Parameters
    ----------
    schema:
        Schema of the synchronized table.
    edb:
        The encrypted database back-end (possibly shared between instances).
    strategy:
        Either a strategy name (``"sur"``, ``"oto"``, ``"set"``,
        ``"dp-timer"``, ``"dp-ant"``) or an already-constructed
        :class:`SyncStrategy`.
    epsilon, period, theta, flush:
        Strategy parameters forwarded to the registry when ``strategy`` is a
        name.
    rng:
        Random generator used for all DP noise of this instance.
    """

    def __init__(
        self,
        schema: Schema,
        edb: EncryptedDatabase,
        strategy: str | SyncStrategy = "dp-timer",
        epsilon: float = 0.5,
        period: int = 30,
        theta: int = 15,
        flush: FlushPolicy | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._schema = schema
        self._rng = rng if rng is not None else np.random.default_rng()
        if isinstance(strategy, SyncStrategy):
            self._strategy = strategy
        else:
            self._strategy = make_strategy(
                strategy,
                dummy_factory=self.make_dummy,
                rng=self._rng,
                epsilon=epsilon,
                period=period,
                theta=theta,
                flush=flush,
            )
        # Ground-truth aggregates are maintained incrementally: each received
        # record applies an O(1) delta, so query() never rescans the logical
        # table for the paper's count/group-by/join shapes.
        self._deployment = Deployment(edb, truth_source=IncrementalTruth())
        self._owner = self._deployment.add_owner(
            schema.name, schema, self._strategy
        )
        self._started = False

    # -- record helpers -----------------------------------------------------------

    def make_record(self, values: Mapping[str, object], arrival_time: int = 0) -> Record:
        """Build a real record of this table from a values mapping."""
        self._schema.validate(values)
        return Record(values=values, arrival_time=arrival_time, table=self._schema.name)

    def make_dummy(self, arrival_time: int = 0) -> Record:
        """Build a dummy record of this table."""
        return make_dummy_record(self._schema, arrival_time)

    # -- lifecycle ------------------------------------------------------------------

    def start(self, initial_records: Sequence[Record | Mapping[str, object]] = ()) -> None:
        """Outsource the initial database ``D_0`` (runs the Setup protocol)."""
        if self._started:
            raise RuntimeError("DPSync instance already started")
        records = [self._coerce(r, arrival_time=0) for r in initial_records]
        self._deployment.start({self._schema.name: records})
        self._started = True

    def receive(
        self, time: int, update: Record | Mapping[str, object] | None
    ) -> SyncDecision:
        """Deliver the logical update ``u_t`` for time unit ``time``.

        Pass ``None`` when no record arrived this time unit.  Returns the
        strategy's decision, whose ``should_sync``/``volume`` fields are what
        the server observes.
        """
        if not self._started:
            raise RuntimeError("call start() before receive()")
        record = None if update is None else self._coerce(update, arrival_time=time)
        return self._deployment.receive(self._schema.name, time, record)

    def query(self, query: Query | str, time: int | None = None) -> AnalystObservation:
        """Run a query (AST object or SQL string) through the Query protocol."""
        if not self._started:
            raise RuntimeError("call start() before query()")
        parsed = parse_query(query) if isinstance(query, str) else query
        at = time if time is not None else self._owner.current_time
        return self._deployment.query(parsed, time=at)

    def register_sibling(self, sibling: "DPSync") -> None:
        """Expose a sibling instance's table to this instance's ground truth.

        When several ``DPSync`` facades share one EDB (one per table, as in
        the paper's join experiment), each facade only ingests its own
        records -- so a join query's logical answer would see a partial
        database.  Registering the sibling makes its live logical table part
        of this instance's ground-truth view; join queries then rescan the
        complete logical database instead of freezing on a one-sided
        maintained aggregate.
        """
        if sibling is self:
            raise ValueError("an instance cannot be its own sibling")
        self.register_table_source(
            sibling.schema.name, lambda: sibling.owner.logical_database
        )

    def register_table_source(
        self, table: str, source: Callable[[], Sequence[Record]]
    ) -> None:
        """Expose an arbitrary external logical table to ground truth."""
        self._deployment.register_table_source(table, source)

    # -- state ------------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The synchronized table's schema."""
        return self._schema

    @property
    def deployment(self) -> Deployment:
        """The underlying (single-owner) fleet deployment."""
        return self._deployment

    @property
    def owner(self) -> Owner:
        """The owner component."""
        return self._owner

    @property
    def analyst(self) -> Analyst:
        """The analyst component."""
        return self._deployment.analyst

    @property
    def strategy(self) -> SyncStrategy:
        """The synchronization strategy."""
        return self._strategy

    @property
    def edb(self) -> EncryptedDatabase:
        """The encrypted database back-end."""
        return self._owner.edb

    @property
    def update_pattern(self) -> UpdatePattern:
        """Server-observable update transcript of this instance."""
        return self._owner.update_pattern

    @property
    def logical_gap(self) -> int:
        """Current logical gap (Section 4.5.2)."""
        return self._owner.logical_gap

    @property
    def epsilon(self) -> float:
        """Update-pattern privacy guarantee of the configured strategy."""
        return self._strategy.epsilon

    # -- internals -----------------------------------------------------------------------

    def _coerce(self, update: Record | Mapping[str, object], arrival_time: int) -> Record:
        if isinstance(update, Record):
            if update.table != self._schema.name:
                raise ValueError(
                    f"record targets {update.table!r}, expected {self._schema.name!r}"
                )
            return update
        return self.make_record(update, arrival_time=arrival_time)
