"""Evaluation metrics (Section 4.5).

* **Logical gap** ``LG(t)``: records received by the owner but not yet
  outsourced to the server.
* **Query error** ``QE(q_t)``: L1 distance between the query answer over the
  logical database and the answer returned by the outsourced database.
* **Efficiency**: query execution time (charged by the EDB cost model) and
  the number/size of outsourced records, including the dummy overhead.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.edb.records import Record
from repro.query.executor import Answer, answer_l1_distance

__all__ = ["logical_gap", "query_error", "dummy_overhead", "megabytes"]


def logical_gap(received: int | Sequence[Record], outsourced_real: int | Iterable[Record]) -> int:
    """``LG(t) = |D_t| - |D_t ∩ D̂_t|`` -- records received but not outsourced.

    Accepts either raw counts or record collections for both sides.  Because
    DP-Sync only ever outsources records it has received (append-only, FIFO),
    the intersection size equals the number of real outsourced records.
    """
    received_count = received if isinstance(received, int) else len(list(received))
    if isinstance(outsourced_real, int):
        outsourced_count = outsourced_real
    else:
        outsourced_count = sum(1 for r in outsourced_real if not r.is_dummy)
    return max(0, received_count - outsourced_count)


def query_error(true_answer: Answer, observed_answer: Answer) -> float:
    """``QE(q_t)``: L1 distance between the true and the observed answer."""
    return answer_l1_distance(true_answer, observed_answer)


def dummy_overhead(total_outsourced: int, real_outsourced: int) -> int:
    """Number of dummy records stored on the server."""
    if real_outsourced > total_outsourced:
        raise ValueError("real record count cannot exceed the total")
    return total_outsourced - real_outsourced


def megabytes(num_bytes: float) -> float:
    """Convert bytes to megabytes (paper reports storage in Mb)."""
    return num_bytes / 1e6
