"""DP-ANT: above-noisy-threshold synchronization (Algorithm 3).

DP-ANT synchronizes when the owner has received *approximately* ``theta``
records since the last synchronization.  The comparison is performed with the
sparse-vector technique: the privacy budget is split in half, the first half
perturbs the threshold (``Lap(2/eps1)``) and the per-step counts
(``Lap(4/eps1)``), the second half feeds the ``Perturb`` fetch that decides
how many records to upload once the threshold fires.  Each
threshold-crossing round touches a disjoint slice of the update stream, so
rounds compose in parallel and the overall update pattern is
``epsilon``-DP (Theorem 11).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.cache import CacheMode
from repro.core.strategies.base import SyncDecision, SyncStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.core.strategies.perturb import perturb
from repro.dp.mechanisms import AboveThreshold
from repro.edb.records import Record

__all__ = ["DPANTStrategy"]


class DPANTStrategy(SyncStrategy):
    """Above-noisy-threshold differentially-private synchronization.

    Parameters
    ----------
    epsilon:
        Update-pattern privacy budget; split evenly between the sparse-vector
        comparisons (``epsilon/2``) and the record fetch (``epsilon/2``).
    theta:
        The (public) threshold on the number of newly received records.
    flush:
        Cache-flush policy; ``FlushPolicy.disabled()`` turns it off.
    budget_split:
        Fraction of ``epsilon`` given to the sparse-vector side.  The paper
        uses 0.5; other values are exposed for the budget-split ablation.
    resample_comparison_noise:
        Whether the sparse-vector comparison noise is drawn fresh at every
        time step (Algorithm 3 as printed; the default) or held fixed within
        a round.  The held variant synchronizes far less often on sparse
        streams at small budgets; see the noise-resampling ablation bench.
    """

    name = "dp-ant"

    def __init__(
        self,
        dummy_factory: Callable[[int], Record],
        epsilon: float = 0.5,
        theta: int = 15,
        flush: FlushPolicy | None = None,
        rng: np.random.Generator | None = None,
        cache_mode: CacheMode = CacheMode.FIFO,
        budget_split: float = 0.5,
        resample_comparison_noise: bool = True,
    ) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        if not 0.0 < budget_split < 1.0:
            raise ValueError("budget_split must be in (0, 1)")
        super().__init__(dummy_factory, rng=rng, cache_mode=cache_mode)
        self._epsilon = epsilon
        self._theta = theta
        self._flush = flush if flush is not None else FlushPolicy()
        self._budget_split = budget_split
        self._epsilon_compare = epsilon * budget_split
        self._epsilon_fetch = epsilon * (1.0 - budget_split)
        self._sparse = AboveThreshold(
            theta=float(theta),
            epsilon=self._epsilon_compare,
            resample_noise=resample_comparison_noise,
        )
        self._round_received = 0
        self._round_index = 0
        # Whether the next comparison could fire without a new arrival: true
        # until the first step and right after a crossing (both draw a fresh
        # noisy threshold and held noise, so 0 + noise may already cross).
        self._comparison_pending = True

    @property
    def epsilon(self) -> float:
        return self._epsilon

    @property
    def theta(self) -> int:
        """The threshold parameter."""
        return self._theta

    @property
    def flush_policy(self) -> FlushPolicy:
        """The configured cache-flush policy."""
        return self._flush

    @property
    def epsilon_compare(self) -> float:
        """Budget share used by the sparse-vector comparisons (``eps1``)."""
        return self._epsilon_compare

    @property
    def epsilon_fetch(self) -> float:
        """Budget share used by the Perturb fetch (``eps2``)."""
        return self._epsilon_fetch

    def _initial_records(self, initial: Sequence[Record]) -> list[Record]:
        gamma0 = perturb(len(initial), self._epsilon, self.cache, self._noise, 0)
        self.accountant.spend(self._epsilon, partition="setup", label="M_setup")
        self._sparse.reset(self._noise)
        return gamma0

    def next_event(self, now: int) -> int | None:
        """When the strategy must be stepped even without an arrival.

        With resampled comparison noise (Algorithm 3 as printed) every time
        unit draws fresh ``Lap(4/eps1)`` noise and may cross the threshold,
        so no tick can be skipped.  With held noise the comparison outcome is
        constant between arrivals and crossings, so only the tick right after
        a crossing (fresh threshold and held noise) and the flush schedule
        need a wake-up.
        """
        if self._sparse.resample_noise or self._comparison_pending:
            return now + 1
        return self._flush.next_flush_after(now)

    def _step(self, time: int, update: Record | None) -> SyncDecision:
        if update is not None:
            self.cache.write(update)
            self._round_received += 1

        records: list[Record] = []
        reasons: list[str] = []

        fired = self._sparse.step(self._round_received, self._noise)
        self._comparison_pending = fired
        if fired:
            self._round_index += 1
            records.extend(
                perturb(self._round_received, self._epsilon_fetch, self.cache, self._noise, time)
            )
            # One sparse-vector round costs eps1 (comparisons) + eps2 (fetch);
            # rounds act on disjoint data slices, hence their own partition.
            self.accountant.spend(
                self._epsilon_compare + self._epsilon_fetch,
                partition=f"round-{self._round_index}",
                label="M_sparse",
            )
            self._round_received = 0
            reasons.append("threshold")

        if self._flush.should_flush(time):
            records.extend(self.cache.read(self._flush.size, time))
            self.accountant.spend(0.0, partition="flush", label="M_flush")
            reasons.append("flush")

        if not reasons or not records:
            return SyncDecision.no_sync()
        return SyncDecision(
            should_sync=True, records=tuple(records), reason="+".join(reasons)
        )
