"""Synchronization strategies (Section 5).

Naive strategies:

* :class:`SURStrategy` -- synchronize upon receipt (no privacy);
* :class:`OTOStrategy` -- one-time outsourcing (full privacy, no utility);
* :class:`SETStrategy` -- synchronize every time unit (full privacy, poor
  performance).

Differentially-private strategies:

* :class:`DPTimerStrategy` -- Algorithm 1: update every ``T`` steps with a
  Laplace-perturbed record count;
* :class:`DPANTStrategy` -- Algorithm 3: update when approximately ``theta``
  records have accumulated, via the sparse-vector technique.

Both DP strategies use the :func:`perturb` operator (Algorithm 2) and the
cache-flush mechanism (:class:`FlushPolicy`).
"""

from repro.core.strategies.base import SyncDecision, SyncStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.core.strategies.perturb import perturb
from repro.core.strategies.naive import OTOStrategy, SETStrategy, SURStrategy
from repro.core.strategies.dp_timer import DPTimerStrategy
from repro.core.strategies.dp_ant import DPANTStrategy
from repro.core.strategies.registry import available_strategies, make_strategy

__all__ = [
    "DPANTStrategy",
    "DPTimerStrategy",
    "FlushPolicy",
    "OTOStrategy",
    "SETStrategy",
    "SURStrategy",
    "SyncDecision",
    "SyncStrategy",
    "available_strategies",
    "make_strategy",
    "perturb",
]
