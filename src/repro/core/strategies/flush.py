"""Cache-flush mechanism.

Both DP strategies bound their logical gap only in a high-probability sense;
over an indefinitely growing database the cache could still drift.  The paper
therefore adds a flush mechanism: every ``interval`` time units the owner
synchronizes exactly ``size`` records (padding with dummies when the cache
holds fewer).  Because both the schedule and the volume are fixed constants,
the flush is data independent and costs no privacy (it is the ``M_flush``
component, 0-DP, in the proofs of Theorems 10/11).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FlushPolicy"]


@dataclass(frozen=True)
class FlushPolicy:
    """Fixed-interval, fixed-volume cache flush.

    Attributes
    ----------
    interval:
        Flush period ``f`` in time units.  The paper's default is 2000.
    size:
        Number of records ``s`` synchronized by each flush (default 15).
    enabled:
        Allows experiments (and the flush ablation bench) to switch the
        mechanism off entirely.
    """

    interval: int = 2000
    size: int = 15
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("flush interval must be positive")
        if self.size < 0:
            raise ValueError("flush size must be non-negative")

    def should_flush(self, time: int) -> bool:
        """Whether a flush is scheduled at ``time`` (time > 0)."""
        if not self.enabled or self.size == 0:
            return False
        return time > 0 and time % self.interval == 0

    def dummy_volume_by(self, time: int) -> int:
        """The ``eta = size * floor(time / interval)`` term of Theorems 7/9."""
        if not self.enabled:
            return 0
        return self.size * (time // self.interval)

    def next_flush_after(self, now: int) -> int | None:
        """The first flush tick strictly after ``now`` (``None`` if never).

        This is the scheduling hint both DP strategies feed to the
        event-driven engine; keeping it on the policy guarantees the engine's
        wake-ups and :meth:`should_flush` can never disagree about the
        schedule.
        """
        if not self.enabled or self.size == 0:
            return None
        return ((now // self.interval) + 1) * self.interval

    @staticmethod
    def disabled() -> "FlushPolicy":
        """A policy that never flushes."""
        return FlushPolicy(interval=1, size=0, enabled=False)
