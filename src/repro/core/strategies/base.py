"""Synchronization-strategy interface.

A strategy is the ``Sync`` algorithm of Definition 1: a stateful, possibly
probabilistic procedure that observes the owner's incoming logical updates
and decides, at every time step, whether to run the Update protocol and with
how many records.  The strategy owns the local cache and is the *only*
component allowed to read from it, which makes the privacy argument local to
this package.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.cache import CacheMode, LocalCache
from repro.dp.composition import PrivacyAccountant
from repro.dp.mechanisms import LaplaceBlockStream
from repro.edb.records import Record

__all__ = ["SyncDecision", "SyncStrategy"]


@dataclass(frozen=True)
class SyncDecision:
    """The outcome of one strategy step.

    Attributes
    ----------
    should_sync:
        Whether the owner must run the Update protocol this time step.
    records:
        The records ``γ_t`` to upload (real records read from the cache plus
        any dummy padding).  Empty when ``should_sync`` is false.  Note that a
        synchronization signal with an *empty* record set is still possible
        (e.g. a Perturb call whose noisy count came out non-positive followed
        by a flush of size 0); the owner skips the Update call in that case
        because an empty update would itself be observable.
    reason:
        Human-readable trigger (``"receipt"``, ``"timer"``, ``"threshold"``,
        ``"flush"``, combinations thereof) used by reports and tests.
    """

    should_sync: bool
    records: tuple[Record, ...] = ()
    reason: str = ""

    @property
    def volume(self) -> int:
        """Update volume ``|γ_t|`` carried by this decision."""
        return len(self.records)

    @property
    def real_count(self) -> int:
        """Number of real (non-dummy) records in the decision."""
        return sum(1 for record in self.records if not record.is_dummy)

    @property
    def dummy_count(self) -> int:
        """Number of dummy records in the decision."""
        return sum(1 for record in self.records if record.is_dummy)

    @staticmethod
    def no_sync() -> "SyncDecision":
        """A decision that performs no synchronization."""
        return SyncDecision(should_sync=False)


class SyncStrategy(abc.ABC):
    """Base class for synchronization strategies.

    Parameters
    ----------
    dummy_factory:
        Callable producing dummy records for cache padding / SET updates.
    rng:
        Random generator for the DP noise.  Defaults to a fresh unseeded
        generator; experiments pass a seeded one.
    cache_mode:
        FIFO (default) or LIFO ordering of the local cache.
    """

    #: Short machine-readable name, set by subclasses (e.g. ``"dp-timer"``).
    name: str = "abstract"

    def __init__(
        self,
        dummy_factory: Callable[[int], Record],
        rng: np.random.Generator | None = None,
        cache_mode: CacheMode = CacheMode.FIFO,
    ) -> None:
        self._dummy_factory = dummy_factory
        self._rng = rng if rng is not None else np.random.default_rng()
        # All Laplace noise of the strategy flows through one block-predrawn
        # stream: the k-th draw is bit-identical to the k-th direct draw from
        # ``self._rng`` (see LaplaceBlockStream), but the per-event dispatch
        # overhead is amortized over whole blocks.  Strategies needing other
        # distributions must keep using ``self._rng`` directly and forgo the
        # stream (mixing both on one generator would reorder the bit stream).
        self._noise = LaplaceBlockStream(self._rng)
        self.cache = LocalCache(dummy_factory, mode=cache_mode)
        self.accountant = PrivacyAccountant()
        self._received_total = 0
        self._synced_real_total = 0
        self._synced_dummy_total = 0
        self._sync_count = 0
        self._initialized = False

    # -- abstract surface -----------------------------------------------------

    @property
    @abc.abstractmethod
    def epsilon(self) -> float:
        """Update-pattern privacy guarantee of the strategy.

        ``float("inf")`` for SUR (no guarantee), ``0.0`` for OTO/SET (their
        update pattern is data independent) and the configured budget for the
        DP strategies.
        """

    @abc.abstractmethod
    def _initial_records(self, initial: Sequence[Record]) -> list[Record]:
        """Select ``γ_0`` given the initial database (already cached)."""

    @abc.abstractmethod
    def _step(self, time: int, update: Record | None) -> SyncDecision:
        """Strategy-specific per-step logic (update already cached if needed)."""

    # -- scheduling hint --------------------------------------------------------

    def next_event(self, now: int) -> int | None:
        """Next time after ``now`` the strategy must be stepped absent arrivals.

        The event-driven engine (:mod:`repro.engine`) steps a strategy at
        every logical arrival and at every self-scheduled time returned here;
        the time units in between are skipped entirely.  Skipping a tick is
        sound only when :meth:`_step` at that tick would be a pure no-op: no
        state change, no RNG draw, no synchronization decision.  Subclasses
        that are idle between triggers override this to jump straight to
        their next trigger (e.g. the next timer boundary or flush tick).

        Returns ``None`` when the strategy never acts without an arrival.
        The default of ``now + 1`` (wake every tick) is always safe and keeps
        unknown subclasses exactly equivalent to the per-tick loop.
        Spurious wake-ups are harmless; missing one is a correctness bug.
        """
        return now + 1

    # -- template methods ------------------------------------------------------

    def setup(self, initial: Sequence[Record]) -> list[Record]:
        """Process the initial database ``D_0`` and return ``γ_0``.

        The initial records are written to the local cache first (matching
        Algorithm 1/3, which assume ``D_0`` starts in the cache); the
        strategy-specific hook then selects what to outsource.
        """
        if self._initialized:
            raise RuntimeError("setup() may only be called once per strategy instance")
        self._initialized = True
        initial = list(initial)
        for record in initial:
            self.cache.write(record)
        self._received_total += len(initial)
        gamma0 = self._initial_records(initial)
        self._note_outgoing(gamma0)
        return gamma0

    def step(self, time: int, update: Record | None) -> SyncDecision:
        """Advance one time unit with logical update ``u_t`` (or ``None``)."""
        if not self._initialized:
            raise RuntimeError("step() called before setup()")
        if time <= 0:
            raise ValueError("time steps start at 1 (time 0 is the setup step)")
        if update is not None:
            if update.is_dummy:
                raise ValueError("logical updates are never dummy records")
            self._received_total += 1
        decision = self._step(time, update)
        if decision.should_sync:
            self._sync_count += 1
            self._note_outgoing(decision.records)
        return decision

    # -- bookkeeping ------------------------------------------------------------

    def _note_outgoing(self, records: Sequence[Record]) -> None:
        self._synced_real_total += sum(1 for r in records if not r.is_dummy)
        self._synced_dummy_total += sum(1 for r in records if r.is_dummy)

    def make_dummy(self, time: int) -> Record:
        """Create a dummy record (delegates to the configured factory)."""
        return self._dummy_factory(time)

    @property
    def received_total(self) -> int:
        """Real records received so far (including the initial database)."""
        return self._received_total

    @property
    def synced_real_total(self) -> int:
        """Real records synchronized to the server so far."""
        return self._synced_real_total

    @property
    def synced_dummy_total(self) -> int:
        """Dummy records synchronized to the server so far."""
        return self._synced_dummy_total

    @property
    def sync_count(self) -> int:
        """Number of Update-protocol invocations signalled so far (excluding setup)."""
        return self._sync_count

    @property
    def pending(self) -> int:
        """Records currently held in the local cache."""
        return len(self.cache)

    @property
    def logical_gap(self) -> int:
        """Records received but not yet outsourced (Section 4.5.2)."""
        return max(0, self._received_total - self._synced_real_total)
