"""DP-Timer synchronization (Algorithm 1).

DP-Timer synchronizes on a fixed schedule -- every ``T`` time units -- but
perturbs the *number* of records carried by each synchronization with
``Lap(1/epsilon)`` noise via the ``Perturb`` operator.  Because the schedule
is data independent and each window's count touches a disjoint slice of the
logical update stream, the overall update pattern is ``epsilon``-DP (parallel
composition across windows; Theorem 10).

The cache-flush mechanism (fixed interval ``f``, fixed size ``s``) bounds the
logical gap of an indefinitely growing database at no additional privacy
cost.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.cache import CacheMode
from repro.core.strategies.base import SyncDecision, SyncStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.core.strategies.perturb import perturb
from repro.edb.records import Record

__all__ = ["DPTimerStrategy"]


class DPTimerStrategy(SyncStrategy):
    """Timer-based differentially-private synchronization.

    Parameters
    ----------
    epsilon:
        Update-pattern privacy budget.
    period:
        The timer ``T``: a synchronization is signalled whenever
        ``t mod T == 0``.
    flush:
        Cache-flush policy; pass ``FlushPolicy.disabled()`` to turn it off
        (used by the flush ablation).
    count_mode:
        What the Perturb operator perturbs at each timer tick.  ``"window"``
        (default) is Algorithm 1 as printed: the number of records received
        since the last synchronization.  ``"cache"`` perturbs the current
        local-cache length instead, which continually drains the backlog of
        records deferred by earlier negative noise; it reproduces the small
        (~10 record) empirical logical gaps reported in the paper's Table 5,
        at the cost of a weaker formal composition argument (the same record
        can influence several outputs).  See the count-mode ablation bench
        and EXPERIMENTS.md.
    """

    name = "dp-timer"

    def __init__(
        self,
        dummy_factory: Callable[[int], Record],
        epsilon: float = 0.5,
        period: int = 30,
        flush: FlushPolicy | None = None,
        rng: np.random.Generator | None = None,
        cache_mode: CacheMode = CacheMode.FIFO,
        count_mode: str = "window",
    ) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if period <= 0:
            raise ValueError("period T must be positive")
        if count_mode not in ("window", "cache"):
            raise ValueError(f"count_mode must be 'window' or 'cache', got {count_mode!r}")
        super().__init__(dummy_factory, rng=rng, cache_mode=cache_mode)
        self._epsilon = epsilon
        self._period = period
        self._flush = flush if flush is not None else FlushPolicy()
        self._count_mode = count_mode
        self._window_received = 0
        self._window_index = 0

    @property
    def epsilon(self) -> float:
        return self._epsilon

    @property
    def period(self) -> int:
        """The timer parameter ``T``."""
        return self._period

    @property
    def flush_policy(self) -> FlushPolicy:
        """The configured cache-flush policy."""
        return self._flush

    @property
    def count_mode(self) -> str:
        """What Perturb perturbs at each tick (``"window"`` or ``"cache"``)."""
        return self._count_mode

    def next_event(self, now: int) -> int | None:
        """The next timer boundary or flush tick, whichever comes first.

        Between those two schedules a step without an arrival touches no
        state and draws no noise, so the engine may skip it.
        """
        candidates = [((now // self._period) + 1) * self._period]
        next_flush = self._flush.next_flush_after(now)
        if next_flush is not None:
            candidates.append(next_flush)
        return min(candidates)

    def _initial_records(self, initial: Sequence[Record]) -> list[Record]:
        gamma0 = perturb(len(initial), self._epsilon, self.cache, self._noise, 0)
        self.accountant.spend(self._epsilon, partition="setup", label="M_setup")
        return gamma0

    def _step(self, time: int, update: Record | None) -> SyncDecision:
        if update is not None:
            self.cache.write(update)
            self._window_received += 1

        records: list[Record] = []
        reasons: list[str] = []

        if time % self._period == 0:
            self._window_index += 1
            count = (
                self._window_received if self._count_mode == "window" else len(self.cache)
            )
            records.extend(perturb(count, self._epsilon, self.cache, self._noise, time))
            self.accountant.spend(
                self._epsilon,
                partition=f"window-{self._window_index}",
                label="M_unit",
            )
            self._window_received = 0
            reasons.append("timer")

        if self._flush.should_flush(time):
            records.extend(self.cache.read(self._flush.size, time))
            # The flush reveals a fixed (time, volume) pair regardless of the
            # data, i.e. it is 0-DP (M_flush in the proof of Theorem 10).
            self.accountant.spend(0.0, partition="flush", label="M_flush")
            reasons.append("flush")

        if not reasons:
            return SyncDecision.no_sync()
        if not records:
            # The noisy count came out non-positive and no flush records were
            # due: the owner skips the Update call this round.
            return SyncDecision.no_sync()
        return SyncDecision(
            should_sync=True, records=tuple(records), reason="+".join(reasons)
        )
