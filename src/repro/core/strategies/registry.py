"""Strategy registry / factory.

Experiments refer to strategies by short names (``"sur"``, ``"oto"``,
``"set"``, ``"dp-timer"``, ``"dp-ant"``).  :func:`make_strategy` instantiates
them with the appropriate keyword arguments, forwarding only the parameters
each strategy accepts.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.cache import CacheMode
from repro.core.strategies.base import SyncStrategy
from repro.core.strategies.dp_ant import DPANTStrategy
from repro.core.strategies.dp_timer import DPTimerStrategy
from repro.core.strategies.flush import FlushPolicy
from repro.core.strategies.naive import OTOStrategy, SETStrategy, SURStrategy
from repro.edb.records import Record

__all__ = ["available_strategies", "make_strategy"]

_NAIVE = {
    "sur": SURStrategy,
    "oto": OTOStrategy,
    "set": SETStrategy,
}

_DP = {
    "dp-timer": DPTimerStrategy,
    "dp-ant": DPANTStrategy,
}


def available_strategies() -> tuple[str, ...]:
    """Names accepted by :func:`make_strategy`."""
    return tuple(_NAIVE) + tuple(_DP)


def make_strategy(
    name: str,
    dummy_factory: Callable[[int], Record],
    rng: np.random.Generator | None = None,
    epsilon: float = 0.5,
    period: int = 30,
    theta: int = 15,
    flush: FlushPolicy | None = None,
    cache_mode: CacheMode = CacheMode.FIFO,
) -> SyncStrategy:
    """Instantiate a synchronization strategy by name.

    Parameters irrelevant to the chosen strategy (e.g. ``epsilon`` for SUR)
    are ignored, so experiment sweeps can pass a uniform parameter set.
    """
    key = name.lower().replace("_", "-")
    if key in _NAIVE:
        return _NAIVE[key](dummy_factory, rng=rng, cache_mode=cache_mode)
    if key == "dp-timer":
        return DPTimerStrategy(
            dummy_factory,
            epsilon=epsilon,
            period=period,
            flush=flush,
            rng=rng,
            cache_mode=cache_mode,
        )
    if key == "dp-ant":
        return DPANTStrategy(
            dummy_factory,
            epsilon=epsilon,
            theta=theta,
            flush=flush,
            rng=rng,
            cache_mode=cache_mode,
        )
    raise KeyError(
        f"unknown strategy {name!r}; available: {', '.join(available_strategies())}"
    )
