"""Naive synchronization strategies (Section 5.1).

* **SUR** (synchronize upon receipt) -- uploads each record the moment it
  arrives.  Zero logical gap, zero dummies, but the update pattern *is* the
  arrival pattern, so there is no privacy (group privacy ``inf``-DP).
* **OTO** (one-time outsourcing) -- uploads only the initial database and
  then goes offline.  The update pattern is empty and hence 0-DP, but every
  record received after setup is lost to the analyst.
* **SET** (synchronize every time unit) -- uploads exactly one record per
  time unit, a real one if available and a dummy otherwise.  The update
  pattern is the constant sequence ``(t, 1)`` and hence 0-DP, but half or
  more of the outsourced data ends up being dummies on sparse workloads.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.strategies.base import SyncDecision, SyncStrategy
from repro.edb.records import Record

__all__ = ["SURStrategy", "OTOStrategy", "SETStrategy"]


class SURStrategy(SyncStrategy):
    """Synchronize upon receipt: no caching, no dummies, no privacy."""

    name = "sur"

    @property
    def epsilon(self) -> float:
        return float("inf")

    def next_event(self, now: int) -> int | None:
        # SUR only ever reacts to arrivals; quiet ticks are no-ops.
        return None

    def _initial_records(self, initial: Sequence[Record]) -> list[Record]:
        # Everything received so far is outsourced immediately.
        return self.cache.drain()

    def _step(self, time: int, update: Record | None) -> SyncDecision:
        if update is None:
            return SyncDecision.no_sync()
        return SyncDecision(should_sync=True, records=(update,), reason="receipt")


class OTOStrategy(SyncStrategy):
    """One-time outsourcing: upload the initial database, then stay offline."""

    name = "oto"

    @property
    def epsilon(self) -> float:
        return 0.0

    def next_event(self, now: int) -> int | None:
        # OTO is offline after setup; only arrivals touch its bookkeeping.
        return None

    def _initial_records(self, initial: Sequence[Record]) -> list[Record]:
        return self.cache.drain()

    def _step(self, time: int, update: Record | None) -> SyncDecision:
        # Received records accumulate in the cache purely for bookkeeping
        # (they are what the logical gap counts); none is ever uploaded.
        if update is not None:
            self.cache.write(update)
        return SyncDecision.no_sync()


class SETStrategy(SyncStrategy):
    """Synchronize every time unit with exactly one (real or dummy) record."""

    name = "set"

    @property
    def epsilon(self) -> float:
        return 0.0

    def next_event(self, now: int) -> int | None:
        # SET uploads one record (real or dummy) every single time unit, so
        # no tick may ever be skipped.
        return now + 1

    def _initial_records(self, initial: Sequence[Record]) -> list[Record]:
        return self.cache.drain()

    def _step(self, time: int, update: Record | None) -> SyncDecision:
        if update is not None:
            record = update
        else:
            record = self.make_dummy(time)
        return SyncDecision(should_sync=True, records=(record,), reason="every-step")
