"""The ``Perturb`` operator (Algorithm 2).

``Perturb(c, eps, sigma)`` adds ``Lap(1/eps)`` noise to the count ``c`` and
reads that many records from the local cache, padding with dummy records when
the cache holds fewer.  A non-positive noisy count releases nothing -- which
is itself informative-free because the decision depends only on the noise and
the (already protected) count.
"""

from __future__ import annotations

import numpy as np

from repro.core.cache import LocalCache
from repro.dp.mechanisms import LaplaceBlockStream, LaplaceMechanism
from repro.edb.records import Record

__all__ = ["perturb"]


def perturb(
    count: int,
    epsilon: float,
    cache: LocalCache,
    rng: "np.random.Generator | LaplaceBlockStream",
    current_time: int = 0,
) -> list[Record]:
    """Algorithm 2: fetch a Laplace-perturbed number of records from the cache.

    Parameters
    ----------
    count:
        The true count ``c`` (e.g. records received since the last update).
    epsilon:
        Privacy budget of this invocation; the noise scale is ``1/epsilon``.
    cache:
        The owner's local cache to read from.
    rng:
        Random generator -- or a strategy's :class:`LaplaceBlockStream`,
        which serves the same draws from predrawn blocks -- for the Laplace
        noise.
    current_time:
        Time stamped onto any dummy padding records.

    Returns
    -------
    list[Record]
        ``read(cache, round(c + Lap(1/eps)))`` if the noisy count is
        positive, otherwise an empty list.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    mechanism = LaplaceMechanism(epsilon=epsilon, sensitivity=1.0)
    noisy_count = mechanism.randomize_count(count, rng)
    if noisy_count <= 0:
        return []
    return cache.read(noisy_count, current_time)
