"""The owner's local cache (Section 3.2.1).

The local cache is a lightweight client-side buffer holding records the owner
has received but not yet synchronized.  It supports exactly the three
operations the paper defines:

* ``len(cache)``            -- number of cached records;
* ``cache.write(record)``   -- append a record;
* ``cache.read(n)``         -- pop the first ``n`` records; if fewer than
  ``n`` are cached, the result is padded with freshly created dummy records.

The default FIFO mode guarantees that records are uploaded in arrival order,
which is what gives DP-Sync the strong eventual-consistency property (P3).  A
LIFO mode is provided for the alternative scenario the paper sketches
(analyst only cares about the most recent records); tests cover both.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Iterable

from repro.edb.records import Record

__all__ = ["CacheMode", "LocalCache"]


class CacheMode(enum.Enum):
    """Ordering discipline of the local cache."""

    FIFO = "fifo"
    LIFO = "lifo"


class LocalCache:
    """Client-side record buffer with dummy-padded reads.

    Parameters
    ----------
    dummy_factory:
        Callable producing a dummy record for a given arrival time; used to
        pad reads when the cache holds fewer records than requested.
    mode:
        FIFO (default, paper's choice) or LIFO.
    """

    def __init__(
        self,
        dummy_factory: Callable[[int], Record],
        mode: CacheMode = CacheMode.FIFO,
    ) -> None:
        self._dummy_factory = dummy_factory
        self._mode = mode
        self._buffer: deque[Record] = deque()
        self._total_written = 0
        self._total_read = 0
        self._total_dummies_issued = 0

    # -- the paper's three operations ---------------------------------------

    def __len__(self) -> int:
        return len(self._buffer)

    def write(self, record: Record) -> None:
        """Append ``record`` to the cache (``write(σ, r)``)."""
        if record.is_dummy:
            raise ValueError("dummy records are generated on read, never cached")
        self._buffer.append(record)
        self._total_written += 1

    def read(self, n: int, current_time: int = 0) -> list[Record]:
        """Pop ``n`` records (``read(σ, n)``), padding with dummies if needed.

        Parameters
        ----------
        n:
            Number of records requested; must be non-negative.
        current_time:
            Arrival time stamped onto generated dummy records (for metrics
            only -- the server never sees it).
        """
        if n < 0:
            raise ValueError(f"read size must be non-negative, got {n}")
        popped: list[Record] = []
        for _ in range(min(n, len(self._buffer))):
            if self._mode is CacheMode.FIFO:
                popped.append(self._buffer.popleft())
            else:
                popped.append(self._buffer.pop())
        self._total_read += len(popped)
        shortfall = n - len(popped)
        if shortfall > 0:
            dummies = [self._dummy_factory(current_time) for _ in range(shortfall)]
            self._total_dummies_issued += shortfall
            popped.extend(dummies)
        return popped

    # -- extra helpers --------------------------------------------------------

    def drain(self, current_time: int = 0) -> list[Record]:
        """Pop every cached record (no dummy padding)."""
        return self.read(len(self._buffer), current_time)

    def peek_all(self) -> tuple[Record, ...]:
        """Non-destructive view of the cached records in storage order."""
        return tuple(self._buffer)

    def extend(self, records: Iterable[Record]) -> None:
        """Write several records in order."""
        for record in records:
            self.write(record)

    @property
    def mode(self) -> CacheMode:
        """The cache's ordering discipline."""
        return self._mode

    @property
    def total_written(self) -> int:
        """Number of real records ever written to the cache."""
        return self._total_written

    @property
    def total_read(self) -> int:
        """Number of real records ever popped from the cache."""
        return self._total_read

    @property
    def total_dummies_issued(self) -> int:
        """Number of dummy records generated to pad reads."""
        return self._total_dummies_issued
