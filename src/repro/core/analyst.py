"""The analyst.

The analyst is the trusted querying party of the SOGDB model: it submits
queries to the server at arbitrary times and receives answers computed over
the outsourced structure.  For evaluation, the analyst also computes the
ground-truth answer over the owners' logical databases so that the query
error metric (Section 4.5.2) can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.metrics import query_error
from repro.edb.base import EncryptedDatabase, QueryResult
from repro.edb.records import Record
from repro.query.ast import Query
from repro.query.executor import Answer, ground_truth
from repro.query.incremental import IncrementalTruth

__all__ = ["Analyst", "AnalystObservation"]

#: Logical tables for ground truth: an eager mapping or a lazy provider.
LogicalTables = Mapping[str, Sequence[Record]]


@dataclass(frozen=True)
class AnalystObservation:
    """One query issuance: answer, ground truth, error and QET."""

    time: int
    query_name: str
    answer: Answer
    true_answer: Answer
    l1_error: float
    qet_seconds: float

    @property
    def is_exact(self) -> bool:
        """Whether the outsourced answer matched the logical answer exactly."""
        return self.l1_error == 0.0


class Analyst:
    """Issues queries against an EDB and tracks accuracy against ground truth.

    Parameters
    ----------
    edb:
        The encrypted database to query.
    truth_source:
        Optional :class:`~repro.query.incremental.IncrementalTruth` holding
        maintained per-table aggregates.  Covered queries read the maintained
        state in O(1) instead of rescanning the logical tables; maintainable
        but unregistered queries are registered on first sight (bootstrapped
        from the provided logical tables).  Uncovered shapes fall back to a
        full rescan.
    maintained_tables:
        Optional set of table names (or a zero-argument callable producing
        one) whose inserts actually flow into ``truth_source``.  A query
        referencing any table outside this set is never lazily registered on
        the maintained state: registration would bootstrap it correctly but
        then miss every later insert of the foreign table, silently freezing
        part of the ground truth (the multi-table-join facade bug).  Such
        queries always take the full-rescan path over the provided logical
        tables instead.  ``None`` (the default) places no restriction.
    """

    def __init__(
        self,
        edb: EncryptedDatabase,
        truth_source: IncrementalTruth | None = None,
        maintained_tables: Callable[[], set[str]] | set[str] | None = None,
    ) -> None:
        self._edb = edb
        self._truth_source = truth_source
        self._maintained_tables = maintained_tables
        self._observations: list[AnalystObservation] = []

    @property
    def truth_source(self) -> IncrementalTruth | None:
        """The maintained-aggregate source, when incremental truth is enabled."""
        return self._truth_source

    def query(
        self,
        query: Query,
        logical_tables: LogicalTables | Callable[[], LogicalTables] | None = None,
        time: int = 0,
    ) -> AnalystObservation:
        """Run ``query`` via the EDB's Query protocol and score it.

        Parameters
        ----------
        query:
            The analyst's query.
        logical_tables:
            The owners' logical databases (or a zero-argument callable
            producing them, resolved only when actually needed), used only to
            compute the ground-truth answer for the error metric (the analyst
            is trusted and, in the paper's evaluation, is co-located with the
            owner).  May be omitted when a ``truth_source`` covers the query.
        time:
            Simulation time at which the query is posed.
        """
        result: QueryResult = self._edb.query(query, time=time)
        truth = self._ground_truth(query, logical_tables, time)
        observation = AnalystObservation(
            time=time,
            query_name=query.name,
            answer=result.answer,
            true_answer=truth,
            l1_error=query_error(truth, result.answer),
            qet_seconds=result.qet_seconds,
        )
        self._observations.append(observation)
        return observation

    def _ground_truth(
        self,
        query: Query,
        logical_tables: LogicalTables | Callable[[], LogicalTables] | None,
        time: int = 0,
    ) -> Answer:
        source = self._truth_source
        if source is not None and source.covers(query):
            return source.answer(query, time=time)
        tables = logical_tables() if callable(logical_tables) else logical_tables
        if tables is None:
            raise ValueError(
                f"query {query.name!r} is not covered by the maintained "
                "aggregates and no logical tables were provided"
            )
        if (
            source is not None
            and source.can_maintain(query)
            and self._covers_maintained_tables(query)
        ):
            # First sight of a maintainable query: bootstrap from the current
            # logical state, then maintain deltas from here on.
            source.register(query, tables)
            return source.answer(query, time=time)
        return ground_truth(query, tables, time=time)

    def _covers_maintained_tables(self, query: Query) -> bool:
        restriction = self._maintained_tables
        if restriction is None:
            return True
        if callable(restriction):
            restriction = restriction()
        return set(query.tables) <= set(restriction)

    @property
    def observations(self) -> tuple[AnalystObservation, ...]:
        """All query observations collected so far."""
        return tuple(self._observations)

    def observations_for(self, query_name: str) -> tuple[AnalystObservation, ...]:
        """Observations for one named query."""
        return tuple(o for o in self._observations if o.query_name == query_name)

    def mean_l1_error(self, query_name: str | None = None) -> float:
        """Mean L1 error across observations (optionally for one query)."""
        selected = self.observations_for(query_name) if query_name else self.observations
        if not selected:
            return 0.0
        return sum(o.l1_error for o in selected) / len(selected)

    def max_l1_error(self, query_name: str | None = None) -> float:
        """Maximum L1 error across observations (optionally for one query)."""
        selected = self.observations_for(query_name) if query_name else self.observations
        if not selected:
            return 0.0
        return max(o.l1_error for o in selected)

    def mean_qet(self, query_name: str | None = None) -> float:
        """Mean query execution time across observations."""
        selected = self.observations_for(query_name) if query_name else self.observations
        if not selected:
            return 0.0
        return sum(o.qet_seconds for o in selected) / len(selected)
