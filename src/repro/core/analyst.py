"""The analyst.

The analyst is the trusted querying party of the SOGDB model: it submits
queries to the server at arbitrary times and receives answers computed over
the outsourced structure.  For evaluation, the analyst also computes the
ground-truth answer over the owners' logical databases so that the query
error metric (Section 4.5.2) can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.metrics import query_error
from repro.edb.base import EncryptedDatabase, QueryResult
from repro.edb.records import Record
from repro.query.ast import Query
from repro.query.executor import Answer, ground_truth

__all__ = ["Analyst", "AnalystObservation"]


@dataclass(frozen=True)
class AnalystObservation:
    """One query issuance: answer, ground truth, error and QET."""

    time: int
    query_name: str
    answer: Answer
    true_answer: Answer
    l1_error: float
    qet_seconds: float

    @property
    def is_exact(self) -> bool:
        """Whether the outsourced answer matched the logical answer exactly."""
        return self.l1_error == 0.0


class Analyst:
    """Issues queries against an EDB and tracks accuracy against ground truth."""

    def __init__(self, edb: EncryptedDatabase) -> None:
        self._edb = edb
        self._observations: list[AnalystObservation] = []

    def query(
        self,
        query: Query,
        logical_tables: Mapping[str, Sequence[Record]],
        time: int = 0,
    ) -> AnalystObservation:
        """Run ``query`` via the EDB's Query protocol and score it.

        Parameters
        ----------
        query:
            The analyst's query.
        logical_tables:
            The owners' logical databases, used only to compute the
            ground-truth answer for the error metric (the analyst is trusted
            and, in the paper's evaluation, is co-located with the owner).
        time:
            Simulation time at which the query is posed.
        """
        result: QueryResult = self._edb.query(query, time=time)
        truth = ground_truth(query, logical_tables)
        observation = AnalystObservation(
            time=time,
            query_name=query.name,
            answer=result.answer,
            true_answer=truth,
            l1_error=query_error(truth, result.answer),
            qet_seconds=result.qet_seconds,
        )
        self._observations.append(observation)
        return observation

    @property
    def observations(self) -> tuple[AnalystObservation, ...]:
        """All query observations collected so far."""
        return tuple(self._observations)

    def observations_for(self, query_name: str) -> tuple[AnalystObservation, ...]:
        """Observations for one named query."""
        return tuple(o for o in self._observations if o.query_name == query_name)

    def mean_l1_error(self, query_name: str | None = None) -> float:
        """Mean L1 error across observations (optionally for one query)."""
        selected = self.observations_for(query_name) if query_name else self.observations
        if not selected:
            return 0.0
        return sum(o.l1_error for o in selected) / len(selected)

    def max_l1_error(self, query_name: str | None = None) -> float:
        """Maximum L1 error across observations (optionally for one query)."""
        selected = self.observations_for(query_name) if query_name else self.observations
        if not selected:
            return 0.0
        return max(o.l1_error for o in selected)

    def mean_qet(self, query_name: str | None = None) -> float:
        """Mean query execution time across observations."""
        selected = self.observations_for(query_name) if query_name else self.observations
        if not selected:
            return 0.0
        return sum(o.qet_seconds for o in selected) / len(selected)
