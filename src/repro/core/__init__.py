"""DP-Sync core: the paper's primary contribution.

The framework (Figure 1) wires together:

* a **local cache** (:mod:`repro.core.cache`) that temporarily holds records
  received by the owner,
* a **synchronization strategy** (:mod:`repro.core.strategies`) that decides
  *when* to synchronize and *how many* records each synchronization carries,
* an **owner** (:mod:`repro.core.owner`) that runs the EDB protocols when the
  strategy signals,
* an **analyst** (:mod:`repro.core.analyst`) that issues queries,
* the **update-pattern** abstraction and its DP accounting
  (:mod:`repro.core.update_pattern`, :mod:`repro.core.accountant`),
* the evaluation **metrics** of Section 4.5 (:mod:`repro.core.metrics`).

:class:`repro.core.framework.DPSync` is the top-level entry point most users
want; see ``examples/quickstart.py``.
"""

from repro.core.cache import CacheMode, LocalCache
from repro.core.update_pattern import UpdateEvent, UpdatePattern
from repro.core.metrics import (
    dummy_overhead,
    logical_gap,
    query_error,
)
from repro.core.strategies import (
    DPANTStrategy,
    DPTimerStrategy,
    FlushPolicy,
    OTOStrategy,
    SETStrategy,
    SURStrategy,
    SyncDecision,
    SyncStrategy,
    make_strategy,
    perturb,
)
from repro.core.owner import Owner
from repro.core.analyst import Analyst
from repro.core.framework import DPSync
from repro.core.accountant import (
    ant_update_pattern_guarantee,
    timer_update_pattern_guarantee,
)

__all__ = [
    "Analyst",
    "CacheMode",
    "DPANTStrategy",
    "DPSync",
    "DPTimerStrategy",
    "FlushPolicy",
    "LocalCache",
    "OTOStrategy",
    "Owner",
    "SETStrategy",
    "SURStrategy",
    "SyncDecision",
    "SyncStrategy",
    "UpdateEvent",
    "UpdatePattern",
    "ant_update_pattern_guarantee",
    "dummy_overhead",
    "logical_gap",
    "make_strategy",
    "perturb",
    "query_error",
    "timer_update_pattern_guarantee",
]
