"""Update-pattern privacy accounting and simulation mechanisms (Table 4).

The security proofs of Theorems 10/11 work by rewriting each DP strategy as a
mechanism that *outputs the update pattern directly* (the noisy volume at
each synchronization time) and then composing the pieces:

* ``M_setup``  -- Laplace mechanism on ``|D_0|``           -> eps-DP
* ``M_update`` -- per-window / per-round noisy counts      -> eps-DP
  (parallel composition over disjoint data)
* ``M_flush``  -- fixed (time, volume) outputs             -> 0-DP

This module provides both the closed-form guarantees
(:func:`timer_update_pattern_guarantee`, :func:`ant_update_pattern_guarantee`)
and runnable versions of the simulation mechanisms ``M_timer`` / ``M_ANT``
(:func:`simulate_timer_pattern`, :func:`simulate_ant_pattern`).  The latter
are used by the statistical privacy tests: they generate update-pattern
samples from neighboring logical streams and check that the observed
likelihood ratios respect the ``e^eps`` bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.update_pattern import UpdatePattern
from repro.dp.composition import PrivacyAccountant, parallel_composition, sequential_composition

__all__ = [
    "timer_update_pattern_guarantee",
    "ant_update_pattern_guarantee",
    "strategy_guarantee_from_accountant",
    "simulate_timer_pattern",
    "simulate_ant_pattern",
]


def timer_update_pattern_guarantee(epsilon: float) -> float:
    """Composed update-pattern guarantee of DP-Timer (Theorem 10).

    ``M_setup`` is eps-DP, ``M_update`` is eps-DP by parallel composition over
    disjoint windows, ``M_flush`` is 0-DP; setup and update also act on
    disjoint data, and the flush composes sequentially:
    ``max(eps, eps) + 0 = eps``.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    setup_eps = epsilon
    update_eps = parallel_composition([epsilon])
    flush_eps = 0.0
    return sequential_composition([parallel_composition([setup_eps, update_eps]), flush_eps])


def ant_update_pattern_guarantee(epsilon: float, budget_split: float = 0.5) -> float:
    """Composed update-pattern guarantee of DP-ANT (Theorem 11).

    Each sparse-vector round is ``eps1``-DP (AboveThreshold) plus an
    ``eps2``-DP Laplace fetch, i.e. ``eps1 + eps2 = eps`` per round; rounds
    act on disjoint data, and setup/flush compose as for DP-Timer.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if not 0.0 < budget_split < 1.0:
        raise ValueError("budget_split must be in (0, 1)")
    eps1 = epsilon * budget_split
    eps2 = epsilon * (1.0 - budget_split)
    per_round = sequential_composition([eps1, eps2])
    update_eps = parallel_composition([per_round])
    return sequential_composition([parallel_composition([epsilon, update_eps]), 0.0])


def strategy_guarantee_from_accountant(accountant: PrivacyAccountant) -> float:
    """The composed guarantee of a concrete strategy run (from its spends)."""
    return accountant.total_epsilon()


# ---------------------------------------------------------------------------
# Simulation mechanisms of Table 4
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _PatternParams:
    epsilon: float
    flush_interval: int
    flush_size: int


def simulate_timer_pattern(
    updates: Sequence[bool],
    initial_size: int,
    epsilon: float,
    period: int,
    flush_interval: int = 2000,
    flush_size: int = 15,
    rng: np.random.Generator | None = None,
) -> UpdatePattern:
    """Run ``M_timer`` (Table 4) over a logical update stream.

    ``updates[i]`` indicates whether a logical update arrived at time ``i+1``.
    The returned pattern contains the *noisy volumes* the server would
    observe; volumes are reported as real numbers rounded to integers and
    floored at zero, matching the Perturb read semantics.
    """
    rng = rng if rng is not None else np.random.default_rng()
    pattern = UpdatePattern()
    scale = 1.0 / epsilon
    setup_volume = max(0, int(round(initial_size + rng.laplace(0.0, scale))))
    pattern.record(0, setup_volume)
    horizon = len(updates)
    window_count = 0
    for t in range(1, horizon + 1):
        if updates[t - 1]:
            window_count += 1
        volume = 0
        synced = False
        if t % period == 0:
            noisy = int(round(window_count + rng.laplace(0.0, scale)))
            if noisy > 0:
                volume += noisy
            window_count = 0
            synced = True
        if flush_size > 0 and t % flush_interval == 0:
            volume += flush_size
            synced = True
        if synced and volume > 0:
            pattern.record(t, volume)
    return pattern


def simulate_ant_pattern(
    updates: Sequence[bool],
    initial_size: int,
    epsilon: float,
    theta: float,
    flush_interval: int = 2000,
    flush_size: int = 15,
    rng: np.random.Generator | None = None,
) -> UpdatePattern:
    """Run ``M_ANT`` (Table 4) over a logical update stream."""
    rng = rng if rng is not None else np.random.default_rng()
    pattern = UpdatePattern()
    scale_setup = 1.0 / epsilon
    eps1 = epsilon / 2.0
    eps2 = epsilon / 2.0
    setup_volume = max(0, int(round(initial_size + rng.laplace(0.0, scale_setup))))
    pattern.record(0, setup_volume)
    noisy_threshold = theta + rng.laplace(0.0, 2.0 / eps1)
    count = 0
    for t in range(1, len(updates) + 1):
        if updates[t - 1]:
            count += 1
        volume = 0
        synced = False
        v = rng.laplace(0.0, 4.0 / eps1)
        if count + v >= noisy_threshold:
            noisy = int(round(count + rng.laplace(0.0, 1.0 / eps2)))
            if noisy > 0:
                volume += noisy
            noisy_threshold = theta + rng.laplace(0.0, 2.0 / eps1)
            count = 0
            synced = True
        if flush_size > 0 and t % flush_interval == 0:
            volume += flush_size
            synced = True
        if synced and volume > 0:
            pattern.record(t, volume)
    return pattern
