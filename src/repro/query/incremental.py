"""Incrementally maintained ground-truth aggregates.

The analyst's accuracy metric needs the *true* answer of every test query
over the owners' logical databases.  Recomputing it by rescanning every
logical table at every query time is ``O(|D_t|)`` per query; over a
month-long stream with queries every six hours that dwarfs the actual
synchronization work.  This module maintains the answers under insertions
instead -- the classic incremental-view-maintenance move (cf. the
FO+MOD-under-updates line of work): each arriving record contributes an
O(1) delta to every registered aggregate.

The maintained state classes live in :mod:`repro.query.views` and are
*shared* with the server-side :class:`~repro.query.views.ViewRegistry`, so
the analyst-side ground truth and the EDB's delta-maintained views cover the
identical fragment through one :func:`~repro.query.views.can_maintain`
predicate -- count, group-by count, binary join count, modulo/parity count,
multi-way star-join count, and windowed counts (which take the query time as
an :meth:`IncrementalTruth.answer` argument).

The maintained answers are *exactly* equal to a from-scratch rescan: all
arithmetic is integer and the per-group dict accumulates keys in first-seen
order, matching the executor's scan order over append-only logical tables.
Queries outside the fragment are simply not covered and callers fall back
to :func:`repro.query.executor.ground_truth`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.edb.records import Record
from repro.query.ast import Query
from repro.query.executor import Answer
from repro.query.views import ViewRegistry, can_maintain

__all__ = ["IncrementalTruth"]


class IncrementalTruth:
    """Maintains ground-truth answers for registered queries under inserts.

    Records must be fed exactly once, in arrival order, via :meth:`ingest` /
    :meth:`ingest_one` -- in the simulator that is the initial database at
    setup plus every logical update as it is delivered.  Queries registered
    later can be bootstrapped from the current logical tables.
    """

    def __init__(self) -> None:
        self._registry = ViewRegistry()

    @staticmethod
    def can_maintain(query: Query) -> bool:
        """Whether the query's shape has an incremental maintenance rule."""
        return can_maintain(query)

    def covers(self, query: Query) -> bool:
        """Whether the query is registered (and hence answerable in O(1))."""
        return self._registry.covers(query)

    def register(
        self,
        query: Query,
        tables: Mapping[str, Sequence[Record]] | None = None,
    ) -> None:
        """Start maintaining ``query``; idempotent for already-known queries.

        ``tables`` bootstraps the state from records ingested before
        registration (pass the current logical tables); omit it when
        registering before any ingest.
        """
        self._registry.register(query, tables)

    def ingest(self, table: str, records: Iterable[Record]) -> None:
        """Apply a batch of inserted records to every registered aggregate."""
        self._registry.apply_delta(table, records)

    def ingest_one(self, table: str, record: Record) -> None:
        """Apply one inserted record to every registered aggregate."""
        self._registry.apply_delta(table, (record,))

    def answer(self, query: Query, time: int | None = None) -> Answer:
        """The maintained ground-truth answer of a registered query.

        ``time`` is required for windowed queries (their answer is relative
        to the query time) and ignored by every other shape.
        """
        if not self._registry.covers(query):
            raise KeyError(f"query {query.name!r} is not registered")
        return self._registry.answer(query, time)
