"""Incrementally maintained ground-truth aggregates.

The analyst's accuracy metric needs the *true* answer of every test query
over the owners' logical databases.  Recomputing it by rescanning every
logical table at every query time is ``O(|D_t|)`` per query; over a
month-long stream with queries every six hours that dwarfs the actual
synchronization work.  This module maintains the answers under insertions
instead -- the classic incremental-view-maintenance move (cf. the
FO+MOD-under-updates line of work): each arriving record contributes an
O(1) delta to every registered aggregate.

Supported query shapes (everything the paper's workloads use):

* :class:`~repro.query.ast.CountQuery` -- running count of records
  satisfying the predicate;
* :class:`~repro.query.ast.GroupByCountQuery` -- running per-group counts;
* :class:`~repro.query.ast.JoinCountQuery` -- running join-pair count,
  maintained via per-side key counters (inserting ``r`` into the left side
  adds ``right_counts[key(r)]`` pairs, and symmetrically).

The maintained answers are *exactly* equal to a from-scratch rescan: all
arithmetic is integer and the per-group dict accumulates keys in first-seen
order, matching the executor's scan order over append-only logical tables.
Queries outside these shapes are simply not covered and callers fall back
to :func:`repro.query.executor.ground_truth`.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping, Sequence

from repro.edb.records import Record
from repro.query.ast import CountQuery, GroupByCountQuery, JoinCountQuery, Query
from repro.query.executor import Answer

__all__ = ["IncrementalTruth"]


class _CountState:
    """Running ``SELECT COUNT(*) FROM table WHERE predicate``."""

    def __init__(self, query: CountQuery) -> None:
        self._table = query.table
        self._predicate = query.predicate
        self._count = 0

    def insert(self, table: str, record: Record) -> None:
        if table == self._table and self._predicate.evaluate(record):
            self._count += 1

    def answer(self) -> Answer:
        return self._count


class _GroupByCountState:
    """Running ``SELECT g, COUNT(*) FROM table WHERE p GROUP BY g``."""

    def __init__(self, query: GroupByCountQuery) -> None:
        self._table = query.table
        self._predicate = query.predicate
        self._group_attribute = query.group_attribute
        self._counts: Counter = Counter()

    def insert(self, table: str, record: Record) -> None:
        if table == self._table and self._predicate.evaluate(record):
            self._counts[record.get(self._group_attribute)] += 1

    def answer(self) -> Answer:
        return dict(self._counts)


class _JoinCountState:
    """Running ``SELECT COUNT(*) FROM L JOIN R ON L.a = R.b``.

    ``answer = sum_k left_counts[k] * right_counts[k]`` is maintained under
    insertion: a record joining key ``k`` on one side contributes the other
    side's current multiplicity of ``k`` (plus one self-pair when both sides
    are the same table).
    """

    def __init__(self, query: JoinCountQuery) -> None:
        self._left_table = query.left_table
        self._right_table = query.right_table
        self._left_attribute = query.left_attribute
        self._right_attribute = query.right_attribute
        self._left_predicate = query.left_predicate
        self._right_predicate = query.right_predicate
        self._left_counts: Counter = Counter()
        self._right_counts: Counter = Counter()
        self._pairs = 0

    def insert(self, table: str, record: Record) -> None:
        in_left = table == self._left_table and self._left_predicate.evaluate(record)
        in_right = table == self._right_table and self._right_predicate.evaluate(record)
        if not in_left and not in_right:
            return
        left_key = record.get(self._left_attribute) if in_left else None
        right_key = record.get(self._right_attribute) if in_right else None
        if in_left:
            self._pairs += self._right_counts[left_key]
        if in_right:
            self._pairs += self._left_counts[right_key]
        if in_left and in_right and left_key == right_key:
            # Self-join: the record also pairs with itself.
            self._pairs += 1
        if in_left:
            self._left_counts[left_key] += 1
        if in_right:
            self._right_counts[right_key] += 1

    def answer(self) -> Answer:
        return self._pairs


_STATE_TYPES = {
    CountQuery: _CountState,
    GroupByCountQuery: _GroupByCountState,
    JoinCountQuery: _JoinCountState,
}


class IncrementalTruth:
    """Maintains ground-truth answers for registered queries under inserts.

    Records must be fed exactly once, in arrival order, via :meth:`ingest` /
    :meth:`ingest_one` -- in the simulator that is the initial database at
    setup plus every logical update as it is delivered.  Queries registered
    later can be bootstrapped from the current logical tables.
    """

    def __init__(self) -> None:
        self._states: dict[Query, object] = {}

    @staticmethod
    def can_maintain(query: Query) -> bool:
        """Whether the query's shape has an incremental maintenance rule."""
        return type(query) in _STATE_TYPES

    def covers(self, query: Query) -> bool:
        """Whether the query is registered (and hence answerable in O(1))."""
        return query in self._states

    def register(
        self,
        query: Query,
        tables: Mapping[str, Sequence[Record]] | None = None,
    ) -> None:
        """Start maintaining ``query``; idempotent for already-known queries.

        ``tables`` bootstraps the state from records ingested before
        registration (pass the current logical tables); omit it when
        registering before any ingest.
        """
        if query in self._states:
            return
        state_type = _STATE_TYPES.get(type(query))
        if state_type is None:
            raise TypeError(
                f"no incremental maintenance rule for {type(query).__name__}"
            )
        state = state_type(query)
        if tables:
            for table, records in tables.items():
                for record in records:
                    state.insert(table, record)
        self._states[query] = state

    def ingest(self, table: str, records: Iterable[Record]) -> None:
        """Apply a batch of inserted records to every registered aggregate."""
        states = list(self._states.values())
        for record in records:
            for state in states:
                state.insert(table, record)

    def ingest_one(self, table: str, record: Record) -> None:
        """Apply one inserted record to every registered aggregate."""
        for state in self._states.values():
            state.insert(table, record)

    def answer(self, query: Query) -> Answer:
        """The maintained ground-truth answer of a registered query."""
        state = self._states.get(query)
        if state is None:
            raise KeyError(f"query {query.name!r} is not registered")
        return state.answer()
