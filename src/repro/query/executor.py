"""Plaintext query execution.

The executor serves two roles:

1. **Ground truth** -- the analyst's accuracy metric (query error, Section
   4.5.2) is the L1 distance between the answer over the *logical* database
   held by the owner and the answer returned by the outsourced database.  The
   ground-truth side is computed here over plaintext records.
2. **Enclave-side evaluation** -- the EDB simulators (ObliDB / Crypt-epsilon)
   evaluate queries over the outsourced records.  In the real systems this
   happens inside an enclave or under encryption; in the simulator the same
   plan interpreter runs over the decrypted mirror while the *cost model*
   charges for the oblivious work.

Answers are either an ``int`` (scalar counts) or a ``dict`` mapping group keys
to counts.  :func:`answer_l1_distance` computes the L1 error between two
answers of the same shape.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.edb.records import Record
from repro.query.ast import (
    AggregationKind,
    CountNode,
    CrossProductNode,
    FilterNode,
    GroupByCountNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    Query,
    ScanNode,
    WindowedCountQuery,
)
from repro.query.rewriter import rewrite_for_dummies

__all__ = [
    "Answer",
    "PlaintextExecutor",
    "execute_plan",
    "ground_truth",
    "answer_l1_distance",
]

#: A query answer: either a scalar count or per-group counts.
Answer = int | dict


@dataclass
class ExecutionStats:
    """Work counters produced while interpreting a plan."""

    rows_scanned: int = 0
    rows_output: int = 0
    join_pairs: int = 0


@dataclass
class PlaintextExecutor:
    """Interprets relational plans over named collections of records."""

    tables: dict[str, list[Record]] = field(default_factory=dict)
    #: Lowered/rewritten plans keyed by (query, rewrite): queries are frozen
    #: dataclasses, so the schedule's repeated issuances share one plan
    #: instead of re-running the rewriting every query time.  Excluded from
    #: init/repr/eq -- it is a derived cache, not executor state.
    _plan_cache: dict[tuple[Query, bool], PlanNode] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def register(self, table: str, records: Iterable[Record]) -> None:
        """Register (replace) the contents of ``table``."""
        self.tables[table] = list(records)

    def append(self, table: str, records: Iterable[Record]) -> None:
        """Append records to ``table`` (creating it if needed)."""
        self.tables.setdefault(table, []).extend(records)

    def table_size(self, table: str) -> int:
        """Number of rows currently registered for ``table``."""
        return len(self.tables.get(table, []))

    def _plan_for(self, query: Query, rewrite: bool) -> PlanNode:
        try:
            plan = self._plan_cache.get((query, rewrite))
        except TypeError:
            # Queries holding unhashable predicate values (e.g. a list in an
            # EqualityPredicate) executed fine before the cache existed; they
            # simply re-lower every time.
            return rewrite_for_dummies(query) if rewrite else query.to_plan()
        if plan is None:
            plan = rewrite_for_dummies(query) if rewrite else query.to_plan()
            self._plan_cache[(query, rewrite)] = plan
        return plan

    def execute(self, query: Query, rewrite: bool = False, time: int = 0) -> Answer:
        """Execute ``query``, optionally applying dummy-aware rewriting."""
        answer, _ = self.execute_with_stats(query, rewrite, time=time)
        return answer

    def execute_with_stats(
        self, query: Query, rewrite: bool = False, time: int = 0
    ) -> tuple[Answer, ExecutionStats]:
        """Execute ``query`` and return the answer plus work counters.

        ``time`` only matters for windowed queries, whose answer is relative
        to the query time; every other shape ignores it.
        """
        if isinstance(query, WindowedCountQuery):
            return self._execute_windowed(query, rewrite, time)
        answer, stats = self.execute_plan(self._plan_for(query, rewrite))
        return query.finalize_answer(answer), stats

    def execute_rows_with_stats(
        self, query: Query, rewrite: bool = False, time: int = 0
    ) -> tuple[Answer, ExecutionStats]:
        """Execute ``query`` with the row-at-a-time interpreter.

        On subclasses that override :meth:`execute_plan` with a vectorized
        pass (the columnar executor), this forces the base interpreter over
        the row mirror instead -- the planner's ``"rows"`` executor choice.
        Answers and stats are identical either way; only wall clock moves.
        """
        if isinstance(query, WindowedCountQuery):
            # The window oracle is already a row loop; there is no vectorized
            # variant to force away from.
            return self._execute_windowed(query, rewrite, time)
        answer, stats = PlaintextExecutor.execute_plan(
            self, self._plan_for(query, rewrite)
        )
        return query.finalize_answer(answer), stats

    def _execute_windowed(
        self, query: WindowedCountQuery, rewrite: bool, time: int
    ) -> tuple[Answer, ExecutionStats]:
        """Reference rescan for windowed counts (the differential oracle).

        Window membership tests ``arrival_time``, which predicates cannot
        see (they evaluate over ``values``), so the window filter is applied
        directly here rather than lowered to a plan.  ``rewrite`` plays the
        same role as dummy-aware plan rewriting: skip dummy rows when
        scanning outsourced tables.
        """
        stats = ExecutionStats()
        rows = self.tables.get(query.table, [])
        stats.rows_scanned = len(rows)
        start, end = query.window_bounds(time)
        count = 0
        for row in rows:
            if rewrite and row.is_dummy:
                continue
            if start < row.arrival_time <= end and query.predicate.evaluate(row):
                count += 1
        stats.rows_output = count
        return count, stats

    def execute_plan(self, plan: PlanNode) -> tuple[Answer, ExecutionStats]:
        """Interpret a plan; returns (answer, stats)."""
        stats = ExecutionStats()
        result = self._eval(plan, stats)
        if isinstance(plan, (CountNode,)):
            answer: Answer = int(result)
        elif isinstance(plan, GroupByCountNode):
            answer = dict(result)
        else:
            # A bare relational expression: return its cardinality, which is
            # the only aggregate the paper's workloads need.
            rows = list(result)
            stats.rows_output = len(rows)
            answer = len(rows)
        return answer, stats

    # -- plan interpretation -------------------------------------------------

    def _eval(self, plan: PlanNode, stats: ExecutionStats):
        if isinstance(plan, ScanNode):
            rows = self.tables.get(plan.table, [])
            stats.rows_scanned += len(rows)
            return list(rows)
        if isinstance(plan, FilterNode):
            rows = self._eval(plan.child, stats)
            return [row for row in rows if plan.predicate.evaluate(row)]
        if isinstance(plan, ProjectNode):
            rows = self._eval(plan.child, stats)
            projected = []
            for row in rows:
                values = {attr: row.get(attr) for attr in plan.attributes}
                projected.append(
                    Record(
                        values=values,
                        arrival_time=row.arrival_time,
                        is_dummy=row.is_dummy,
                        table=row.table,
                    )
                )
            return projected
        if isinstance(plan, CrossProductNode):
            rows = self._eval(plan.child, stats)
            combined = []
            for row in rows:
                merged = dict(row.values)
                merged[plan.output] = (row.get(plan.left), row.get(plan.right))
                combined.append(
                    Record(
                        values=merged,
                        arrival_time=row.arrival_time,
                        is_dummy=row.is_dummy,
                        table=row.table,
                    )
                )
            return combined
        if isinstance(plan, GroupByCountNode):
            rows = self._eval(plan.child, stats)
            counts: Counter = Counter()
            for row in rows:
                counts[row.get(plan.group_attribute)] += 1
            return dict(counts)
        if isinstance(plan, JoinNode):
            left_rows = self._eval(plan.left, stats)
            right_rows = self._eval(plan.right, stats)
            stats.join_pairs += len(left_rows) * len(right_rows)
            # Hash join for answer computation; the *cost model* still charges
            # the oblivious back-ends quadratically, matching the paper's
            # O(N^2) discussion for Q3.
            index: dict = {}
            for row in right_rows:
                index.setdefault(row.get(plan.right_attribute), []).append(row)
            joined = []
            for left_row in left_rows:
                for right_row in index.get(left_row.get(plan.left_attribute), []):
                    merged = dict(left_row.values)
                    for key, value in right_row.values.items():
                        merged.setdefault(f"{plan.right.__class__.__name__}.{key}", value)
                    joined.append(
                        Record(
                            values=merged,
                            arrival_time=max(
                                left_row.arrival_time, right_row.arrival_time
                            ),
                            is_dummy=left_row.is_dummy or right_row.is_dummy,
                            table="",
                        )
                    )
            return joined
        if isinstance(plan, CountNode):
            rows = self._eval(plan.child, stats)
            stats.rows_output = len(rows)
            return len(rows)
        raise TypeError(f"unknown plan node type: {type(plan).__name__}")


def execute_plan(
    plan: PlanNode, tables: Mapping[str, Sequence[Record]]
) -> Answer:
    """Convenience wrapper: execute ``plan`` over ``tables``."""
    executor = PlaintextExecutor({name: list(rows) for name, rows in tables.items()})
    answer, _ = executor.execute_plan(plan)
    return answer


def ground_truth(
    query: Query, tables: Mapping[str, Sequence[Record]], time: int = 0
) -> Answer:
    """The true answer of ``query`` over the logical (plaintext) database.

    ``time`` is the query time, required for windowed queries.
    """
    executor = PlaintextExecutor({name: list(rows) for name, rows in tables.items()})
    return executor.execute(query, rewrite=False, time=time)


def answer_l1_distance(lhs: Answer, rhs: Answer) -> float:
    """L1 distance between two answers of the same query.

    For scalar counts this is ``|lhs - rhs|``; for grouped counts it is the
    sum of absolute per-group differences over the union of group keys (the
    query-error metric of Section 4.5.2 applied to Q2).
    """
    if isinstance(lhs, Mapping) != isinstance(rhs, Mapping):
        raise TypeError("cannot compare a scalar answer with a grouped answer")
    if isinstance(lhs, Mapping) and isinstance(rhs, Mapping):
        keys = set(lhs) | set(rhs)
        return float(sum(abs(lhs.get(k, 0) - rhs.get(k, 0)) for k in keys))
    return float(abs(float(lhs) - float(rhs)))
