"""Vectorized (columnar) query execution -- the EDB fast path.

The row-at-a-time :class:`~repro.query.executor.PlaintextExecutor` evaluates
predicates with one Python call per record, which dominates end-to-end cost
on Figure-2-scale runs (oblivious operators touch *every* outsourced record
on *every* query).  :class:`ColumnarExecutor` keeps, next to the row mirror,
one NumPy column per attribute plus an ``is_dummy`` column, and evaluates the
paper's three query shapes in one vectorized pass each:

* ``COUNT(*) WHERE p``                  -- one boolean-mask reduction;
* ``SELECT g, COUNT(*) ... GROUP BY g`` -- one factorize + bincount pass,
  with groups emitted in first-appearance order so the answer dict is
  *identical* (including iteration order, which the L-DP back-end's noise
  draws depend on) to the row executor's ``Counter``;
* ``COUNT(*)`` of an equi-join          -- per-side key histograms joined on
  the intersection of key sets (the cost model still charges the oblivious
  back-ends quadratically, matching the paper's O(N^2) discussion for Q3).

Plans or predicates outside this fragment -- and columns that are not plain
numeric arrays -- transparently fall back to the inherited row interpreter,
so answers and :class:`~repro.query.executor.ExecutionStats` are always
bit-identical to the reference executor; only the constant factor changes.
The differential suite (``tests/test_edb_differential.py``) pins exactly
that contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.edb.records import Record
from repro.query.ast import (
    CountNode,
    FilterNode,
    GroupByCountNode,
    JoinNode,
    PlanNode,
    ScanNode,
)
from repro.query.executor import Answer, ExecutionStats, PlaintextExecutor
from repro.query.predicates import (
    AndPredicate,
    EqualityPredicate,
    NotDummyPredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
    RangePredicate,
    TruePredicate,
)

__all__ = ["ColumnarExecutor"]


class _Unsupported(Exception):
    """Internal signal: this plan/predicate/column needs the row fallback."""


@dataclass
class _ColumnarTable:
    """Per-table column store maintained next to the row mirror.

    Attribute values are accumulated in plain lists on append (O(1) per
    record) and consolidated into NumPy arrays lazily, on the first query
    after a change -- flushes between query times therefore pay nothing.
    Tables whose records disagree on their attribute set degrade to the row
    fallback (``uniform`` is cleared) rather than guessing at missing values.
    """

    attributes: tuple[str, ...] | None = None
    values: dict[str, list] = field(default_factory=dict)
    dummies: list = field(default_factory=list)
    uniform: bool = True
    _buffers: dict[str, np.ndarray] = field(default_factory=dict)
    _kinds: dict[str, set] = field(default_factory=dict)
    _dummy_buffer: np.ndarray | None = None
    _built: int = 0

    def append(self, records: Iterable[Record]) -> None:
        for record in records:
            row = record.values
            if self.attributes is None:
                self.attributes = tuple(row)
                self.values = {attr: [] for attr in self.attributes}
            if self.uniform and len(row) == len(self.attributes):
                try:
                    for attr in self.attributes:
                        self.values[attr].append(row[attr])
                except KeyError:
                    self.uniform = False
            else:
                self.uniform = False
            self.dummies.append(record.is_dummy)

    def __len__(self) -> int:
        return len(self.dummies)

    def _consolidate(self) -> None:
        """Convert only the tail appended since the last query into buffers.

        Buffers grow geometrically and are filled in place, so consolidation
        over a whole run is O(total records), not O(records x query times).
        A tail whose dtype does not match the buffer (e.g. floats arriving in
        an int column) promotes the buffer via one ``astype`` copy.
        """
        size = len(self.dummies)
        if self._built == size:
            return
        start = self._built
        for attr, column in self.values.items():
            self._kinds.setdefault(attr, set()).update(map(type, column[start:size]))
            tail = np.asarray(column[start:size])
            if tail.ndim != 1:
                tail = np.empty(size - start, dtype=object)
                tail[:] = column[start:size]
            buffer = self._buffers.get(attr)
            if buffer is None:
                buffer = np.empty(max(size, 16), dtype=tail.dtype)
            else:
                merged = np.result_type(buffer.dtype, tail.dtype)
                if merged != buffer.dtype:
                    buffer = buffer.astype(merged)
                if size > buffer.size:
                    grown = np.empty(max(size, 2 * buffer.size), dtype=buffer.dtype)
                    grown[:start] = buffer[:start]
                    buffer = grown
            buffer[start:size] = tail
            self._buffers[attr] = buffer
        dummy = self._dummy_buffer
        if dummy is None:
            dummy = np.empty(max(size, 16), dtype=bool)
        elif size > dummy.size:
            grown = np.empty(max(size, 2 * dummy.size), dtype=bool)
            grown[:start] = dummy[:start]
            dummy = grown
        dummy[start:size] = self.dummies[start:size]
        self._dummy_buffer = dummy
        self._built = size

    def column(self, attribute: str) -> np.ndarray:
        """Numeric column for ``attribute`` (raises ``_Unsupported`` otherwise)."""
        if not self.uniform:
            raise _Unsupported(f"non-uniform table rows for {attribute!r}")
        self._consolidate()
        buffer = self._buffers.get(attribute)
        if buffer is None:
            raise _Unsupported(f"unknown attribute {attribute!r}")
        if buffer.dtype.kind not in "biuf":
            raise _Unsupported(f"non-numeric column {attribute!r} ({buffer.dtype})")
        return buffer[: self._built]

    def group_column(self, attribute: str) -> np.ndarray:
        """Column usable as *group keys*: stricter than :meth:`column`.

        ``.item()`` on an int64/float64 array yields a Python ``int``/
        ``float``; that reproduces the row executor's key objects only when
        the source values were homogeneously integral or homogeneously
        floating.  A column that mixes the two (``2`` and ``3.5``) would
        promote ``2`` to ``2.0`` -- equal under ``==`` but different under
        JSON serialization -- so mixed columns take the row fallback.
        """
        array = self.column(attribute)
        kinds = self._kinds.get(attribute, set())
        homogeneous = (
            all(k is bool or issubclass(k, np.bool_) for k in kinds)
            or all(
                k is not bool and issubclass(k, (int, np.integer)) for k in kinds
            )
            or all(issubclass(k, (float, np.floating)) for k in kinds)
        )
        if not homogeneous:
            raise _Unsupported(f"mixed-type group column {attribute!r}")
        if array.dtype.kind == "f" and np.isnan(array).any():
            # np.unique collapses every NaN into one group, but the row
            # executor's dict keeps distinct NaN objects as distinct keys
            # (NaN != NaN): only the fallback reproduces that.
            raise _Unsupported(f"NaN group keys in column {attribute!r}")
        return array

    def dummy_mask(self) -> np.ndarray:
        if not self.uniform:
            raise _Unsupported("non-uniform table rows")
        self._consolidate()
        if self._dummy_buffer is None:
            return np.zeros(0, dtype=bool)
        return self._dummy_buffer[: self._built]


class ColumnarExecutor(PlaintextExecutor):
    """Drop-in :class:`PlaintextExecutor` with vectorized aggregate paths.

    The row mirror (``self.tables``) is still maintained, so any plan the
    vectorized fragment does not cover is interpreted by the parent class
    over exactly the same data.
    """

    def __init__(self, tables: dict[str, list[Record]] | None = None) -> None:
        super().__init__(tables or {})
        self._columnar: dict[str, _ColumnarTable] = {}
        for table, rows in self.tables.items():
            store = self._columnar[table] = _ColumnarTable()
            store.append(rows)

    # -- ingestion ----------------------------------------------------------

    def register(self, table: str, records: Iterable[Record]) -> None:
        rows = list(records)
        super().register(table, rows)
        store = self._columnar[table] = _ColumnarTable()
        store.append(rows)

    def append(self, table: str, records: Iterable[Record]) -> None:
        rows = list(records)
        super().append(table, rows)
        self._columnar.setdefault(table, _ColumnarTable()).append(rows)

    # -- execution ----------------------------------------------------------

    def execute_plan(self, plan: PlanNode) -> tuple[Answer, ExecutionStats]:
        """Vectorized interpretation, with row fallback outside the fragment."""
        try:
            return self._vector_plan(plan)
        except _Unsupported:
            return super().execute_plan(plan)

    # -- vectorized fragment -------------------------------------------------

    def _vector_plan(self, plan: PlanNode) -> tuple[Answer, ExecutionStats]:
        stats = ExecutionStats()
        if isinstance(plan, CountNode):
            child = plan.child
            if isinstance(child, JoinNode):
                answer = self._join_count(child, stats)
            else:
                table, mask = self._source(child)
                stats.rows_scanned += self._table_len(table)
                answer = int(mask.sum()) if mask is not None else self._table_len(table)
            stats.rows_output = answer
            return answer, stats
        if isinstance(plan, GroupByCountNode):
            table, mask = self._source(plan.child)
            stats.rows_scanned += self._table_len(table)
            store = self._store(table)
            keys = store.group_column(plan.group_attribute)
            if mask is not None:
                keys = keys[mask]
            return self._grouped_counts(keys), stats
        raise _Unsupported(f"plan shape {type(plan).__name__}")

    def _join_count(self, join: JoinNode, stats: ExecutionStats) -> int:
        left_table, left_mask = self._source(join.left)
        right_table, right_mask = self._source(join.right)
        stats.rows_scanned += self._table_len(left_table) + self._table_len(right_table)
        left_keys = self._store(left_table).column(join.left_attribute)
        right_keys = self._store(right_table).column(join.right_attribute)
        if left_mask is not None:
            left_keys = left_keys[left_mask]
        if right_mask is not None:
            right_keys = right_keys[right_mask]
        stats.join_pairs += left_keys.size * right_keys.size
        if not left_keys.size or not right_keys.size:
            return 0
        left_unique, left_counts = np.unique(left_keys, return_counts=True)
        right_unique, right_counts = np.unique(right_keys, return_counts=True)
        _, left_idx, right_idx = np.intersect1d(
            left_unique, right_unique, assume_unique=True, return_indices=True
        )
        return int((left_counts[left_idx] * right_counts[right_idx]).sum())

    @staticmethod
    def _grouped_counts(keys: np.ndarray) -> dict:
        """Per-group counts with groups in first-appearance order.

        Matching the row executor's ``Counter`` iteration order matters
        beyond cosmetics: the L-DP back-end draws one Laplace variate per
        group *in answer order*, so a different order would change noisy
        answers at a fixed seed.
        """
        if not keys.size:
            return {}
        unique, inverse, counts = np.unique(
            keys, return_inverse=True, return_counts=True
        )
        first_seen = np.full(unique.size, keys.size, dtype=np.int64)
        np.minimum.at(first_seen, inverse, np.arange(keys.size, dtype=np.int64))
        order = np.argsort(first_seen)
        return {
            unique[i].item(): int(counts[i]) for i in order.tolist()
        }

    def _source(self, plan: PlanNode) -> tuple[str, np.ndarray | None]:
        """Resolve a scan/filter chain to (table, row mask or None=all)."""
        if isinstance(plan, ScanNode):
            return plan.table, None
        if isinstance(plan, FilterNode):
            table, mask = self._source(plan.child)
            store = self._store(table)
            predicate_mask = self._mask(plan.predicate, store)
            if predicate_mask is None:
                return table, mask
            if mask is not None:
                predicate_mask = mask & predicate_mask
            return table, predicate_mask
        raise _Unsupported(f"source shape {type(plan).__name__}")

    def _store(self, table: str) -> _ColumnarTable:
        store = self._columnar.get(table)
        if store is None:
            store = self._columnar[table] = _ColumnarTable()
        return store

    def _table_len(self, table: str) -> int:
        return len(self.tables.get(table, ()))

    def _mask(self, predicate: Predicate, store: _ColumnarTable) -> np.ndarray | None:
        """Boolean mask for ``predicate`` over ``store`` (None = all rows)."""
        if isinstance(predicate, TruePredicate):
            return None
        if isinstance(predicate, NotDummyPredicate):
            return ~store.dummy_mask()
        if isinstance(predicate, RangePredicate):
            column = store.column(predicate.attribute)
            return (column >= predicate.low) & (column <= predicate.high)
        if isinstance(predicate, EqualityPredicate):
            column = store.column(predicate.attribute)
            if not isinstance(predicate.value, (int, float, np.number)):
                # Comparing a numeric column against a non-numeric constant
                # is row-wise False in the reference executor.
                return np.zeros(len(store), dtype=bool)
            return column == predicate.value
        if isinstance(predicate, AndPredicate):
            mask: np.ndarray | None = None
            for child in predicate.children:
                child_mask = self._mask(child, store)
                if child_mask is None:
                    continue
                mask = child_mask if mask is None else mask & child_mask
            return mask
        if isinstance(predicate, OrPredicate):
            if not predicate.children:
                # any(()) is False row-wise in the reference executor.
                return np.zeros(len(store), dtype=bool)
            mask = None
            for child in predicate.children:
                child_mask = self._mask(child, store)
                if child_mask is None:
                    return None  # OR with an always-true child accepts all
                mask = child_mask if mask is None else mask | child_mask
            return mask
        if isinstance(predicate, NotPredicate):
            child_mask = self._mask(predicate.child, store)
            if child_mask is None:
                return np.zeros(len(store), dtype=bool)
            return ~child_mask
        raise _Unsupported(f"predicate {type(predicate).__name__}")
