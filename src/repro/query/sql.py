"""A tiny SQL front-end for the paper's query shapes.

The evaluation section poses its workload as SQL strings (Q1-Q3).  This module
parses exactly that family of queries into :mod:`repro.query.ast` objects:

* ``SELECT COUNT(*) FROM T``
* ``SELECT COUNT(*) FROM T WHERE a BETWEEN x AND y``
* ``SELECT COUNT(*) FROM T WHERE a = v``
* ``SELECT g, COUNT(*) [AS alias] FROM T [WHERE ...] GROUP BY g``
* ``SELECT COUNT(*) FROM L INNER JOIN R ON L.a = R.b``

It is intentionally small -- a reproduction needs the paper's query surface,
not a general SQL engine -- but it validates its input and raises
:class:`SQLParseError` with a helpful message for anything outside that
surface.
"""

from __future__ import annotations

import re

from repro.query.ast import CountQuery, GroupByCountQuery, JoinCountQuery, Query
from repro.query.predicates import (
    AndPredicate,
    EqualityPredicate,
    Predicate,
    RangePredicate,
    TruePredicate,
)

__all__ = ["SQLParseError", "parse_query"]


class SQLParseError(ValueError):
    """Raised when a SQL string falls outside the supported query surface."""


_JOIN_RE = re.compile(
    r"^select\s+count\(\*\)\s+from\s+(?P<left>\w+)\s+inner\s+join\s+(?P<right>\w+)"
    r"\s+on\s+(?P<lt>\w+)\.(?P<la>\w+)\s*=\s*(?P<rt>\w+)\.(?P<ra>\w+)\s*$",
    re.IGNORECASE,
)

_GROUPBY_RE = re.compile(
    r"^select\s+(?P<group>\w+)\s*,\s*count\(\*\)(?:\s+as\s+\w+)?\s+from\s+(?P<table>\w+)"
    r"(?:\s+where\s+(?P<where>.*?))?\s+group\s+by\s+(?P<groupby>\w+)\s*$",
    re.IGNORECASE,
)

_COUNT_RE = re.compile(
    r"^select\s+count\(\*\)\s+from\s+(?P<table>\w+)"
    r"(?:\s+where\s+(?P<where>.*?))?\s*$",
    re.IGNORECASE,
)

_BETWEEN_RE = re.compile(
    r"^(?P<attr>\w+)\s+between\s+(?P<low>-?\d+(?:\.\d+)?)\s+and\s+(?P<high>-?\d+(?:\.\d+)?)$",
    re.IGNORECASE,
)

_EQUALITY_RE = re.compile(
    r"^(?P<attr>\w+)\s*=\s*(?P<value>-?\d+(?:\.\d+)?|'[^']*')$",
    re.IGNORECASE,
)


def parse_query(sql: str, label: str | None = None) -> Query:
    """Parse a SQL string into a query object.

    Parameters
    ----------
    sql:
        The SQL text.
    label:
        Optional short name (e.g. ``"Q1"``) attached to the resulting query
        and used in experiment reports.
    """
    text = " ".join(sql.strip().rstrip(";").split())
    if not text:
        raise SQLParseError("empty query string")

    join_match = _JOIN_RE.match(text)
    if join_match:
        left, right = join_match.group("left"), join_match.group("right")
        lt, la = join_match.group("lt"), join_match.group("la")
        rt, ra = join_match.group("rt"), join_match.group("ra")
        left_attr, right_attr = _resolve_join_sides(left, right, lt, la, rt, ra)
        return JoinCountQuery(
            left_table=left,
            right_table=right,
            left_attribute=left_attr,
            right_attribute=right_attr,
            label=label or "JoinCountQuery",
        )

    group_match = _GROUPBY_RE.match(text)
    if group_match:
        group = group_match.group("group")
        groupby = group_match.group("groupby")
        if group.lower() != groupby.lower():
            raise SQLParseError(
                f"selected column {group!r} must match GROUP BY column {groupby!r}"
            )
        predicate = _parse_where(group_match.group("where"))
        return GroupByCountQuery(
            table=group_match.group("table"),
            group_attribute=group,
            predicate=predicate,
            label=label or "GroupByCountQuery",
        )

    count_match = _COUNT_RE.match(text)
    if count_match:
        predicate = _parse_where(count_match.group("where"))
        return CountQuery(
            table=count_match.group("table"),
            predicate=predicate,
            label=label or "CountQuery",
        )

    raise SQLParseError(f"unsupported query shape: {sql!r}")


def _resolve_join_sides(
    left: str, right: str, lt: str, la: str, rt: str, ra: str
) -> tuple[str, str]:
    """Map the ON-clause table qualifiers onto the FROM-clause tables."""
    if lt.lower() == left.lower() and rt.lower() == right.lower():
        return la, ra
    if lt.lower() == right.lower() and rt.lower() == left.lower():
        return ra, la
    raise SQLParseError(
        f"ON clause references tables {lt!r}/{rt!r} that do not match the "
        f"joined tables {left!r}/{right!r}"
    )


def _split_clauses(where: str) -> list[str]:
    """Split a WHERE body on top-level ANDs, keeping BETWEEN ... AND intact."""
    tokens = where.split()
    clauses: list[list[str]] = [[]]
    pending_between = 0  # tokens still owed to an open BETWEEN (value AND value)
    for token in tokens:
        lowered = token.lower()
        if lowered == "and" and pending_between == 0:
            if clauses[-1]:
                clauses.append([])
            continue
        clauses[-1].append(token)
        if lowered == "between":
            pending_between = 3  # expect: low, AND, high
        elif pending_between:
            pending_between -= 1
    return [" ".join(clause) for clause in clauses if clause]


def _parse_where(where: str | None) -> Predicate:
    if where is None or not where.strip():
        return TruePredicate()
    clauses = _split_clauses(where.strip())
    predicates: list[Predicate] = []
    for clause in clauses:
        clause = clause.strip()
        between = _BETWEEN_RE.match(clause)
        if between:
            predicates.append(
                RangePredicate(
                    attribute=between.group("attr"),
                    low=_number(between.group("low")),
                    high=_number(between.group("high")),
                )
            )
            continue
        equality = _EQUALITY_RE.match(clause)
        if equality:
            raw = equality.group("value")
            value = raw.strip("'") if raw.startswith("'") else _number(raw)
            predicates.append(
                EqualityPredicate(attribute=equality.group("attr"), value=value)
            )
            continue
        raise SQLParseError(f"unsupported WHERE clause: {clause!r}")
    if len(predicates) == 1:
        return predicates[0]
    return AndPredicate(tuple(predicates))


def _number(text: str) -> float | int:
    value = float(text)
    return int(value) if value.is_integer() else value
