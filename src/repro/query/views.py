"""Delta-maintained query views for the covered aggregation fragment.

Every synchronization point used to answer the analyst's test queries by
rescanning the encrypted tables -- an ``O(|D_t|)`` pass per query per sync
even though the answer changes only by the delta since the last sync.
Berkholz et al. (PAPERS.md, "Answering FO+MOD queries under updates") show
this fragment can be maintained under insertions with constant update time;
this module is that machinery, shared by two consumers:

* **Server-side views** (:class:`ViewRegistry`): registered on an
  :class:`~repro.edb.base.EncryptedDatabase` (and fanned out across shards by
  the :class:`~repro.edb.router.ShardRouter`), fed an ``O(|batch|)`` delta by
  every ``insert_many`` and answering registered queries in ``O(1)`` /
  ``O(groups)``.
* **Analyst-side ground truth** (:class:`~repro.query.incremental
  .IncrementalTruth`): the same state classes maintain the logical-table
  answers, so truth and EDB views cover the *identical* fragment through the
  shared :func:`can_maintain` predicate.

Covered fragment: scalar count, group-by count, binary join count, modulo /
parity count (FO+MOD), multi-way star-join count (the q-hierarchical class
with O(1) insert deltas, via cascaded per-side key histograms), and windowed
counts (sliding + tumbling, via a ring buffer of per-tick bucket sums).

Two invariants matter for the paper's observables:

* States skip dummy records, so a maintained group dict acquires keys in the
  same first-appearance order as the dummy-rewritten scan -- CryptEpsilon
  draws its per-group Laplace noise in dict iteration order, so the noise
  stream is untouched.  (Analyst-side logical streams carry no dummies, so
  the skip is a no-op there.)
* Views observe *post-flush EDB state only* -- they are fed from
  ``insert_many``, never from the owner's raw stream -- so the ``(t,|gamma|)``
  update-pattern transcript is byte-identical with views on or off.

Views are **derived state**: the durable store never persists them; restore
re-registers every recorded query and bootstraps from the restored executor
tables (deterministic, because bootstrap order is table insertion order).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping, Sequence

from repro.query.ast import (
    CountQuery,
    GroupByCountQuery,
    JoinCountQuery,
    ModCountQuery,
    MultiJoinCountQuery,
    Query,
    WindowedCountQuery,
)
from repro.query.executor import Answer

__all__ = [
    "StaleWindowError",
    "can_maintain",
    "maintained_shapes",
    "make_state",
    "ViewRegistry",
]


class StaleWindowError(ValueError):
    """A windowed view was asked about a window older than its retained
    horizon (query time behind the newest ingested arrival tick).  The ring
    buffer holds only the newest ``window`` ticks, so such a query cannot be
    answered exactly from maintained state; callers fall back to the rescan
    oracle, which is observable-identical."""


# ---------------------------------------------------------------------------
# Maintained state, one class per query shape
# ---------------------------------------------------------------------------


class _CountState:
    """Maintains ``SELECT COUNT(*) FROM t WHERE p``."""

    def __init__(self, query: CountQuery) -> None:
        self._query = query
        self._count = 0

    def insert(self, table: str, record) -> None:
        if table != self._query.table or record.is_dummy:
            return
        if self._query.predicate.evaluate(record):
            self._count += 1

    def answer(self, time: int | None = None) -> Answer:
        return self._count


class _ModCountState:
    """Maintains ``SELECT COUNT(*) % m FROM t WHERE p`` (FO+MOD counting).

    The running count is kept reduced -- the whole point of the fragment is
    that the maintained state is O(1), independent of the database.
    """

    def __init__(self, query: ModCountQuery) -> None:
        self._query = query
        self._count = 0

    def insert(self, table: str, record) -> None:
        if table != self._query.table or record.is_dummy:
            return
        if self._query.predicate.evaluate(record):
            self._count = (self._count + 1) % self._query.modulus

    def answer(self, time: int | None = None) -> Answer:
        return self._count % self._query.modulus


class _GroupByCountState:
    """Maintains ``SELECT g, COUNT(*) FROM t WHERE p GROUP BY g``.

    The Counter acquires keys in insertion (= scan first-appearance) order,
    which pins CryptEpsilon's per-group noise-draw order.
    """

    def __init__(self, query: GroupByCountQuery) -> None:
        self._query = query
        self._groups: Counter = Counter()

    def insert(self, table: str, record) -> None:
        if table != self._query.table or record.is_dummy:
            return
        if self._query.predicate.evaluate(record):
            self._groups[record.get(self._query.group_attribute)] += 1

    def answer(self, time: int | None = None) -> Answer:
        return dict(self._groups)


class _JoinCountState:
    """Maintains a binary join count via per-side key histograms.

    Inserting a left row with key ``k`` adds ``H_right[k]`` join pairs (and
    symmetrically); a self-join row matching both sides on the same key also
    pairs with itself.
    """

    def __init__(self, query: JoinCountQuery) -> None:
        self._query = query
        self._left: Counter = Counter()
        self._right: Counter = Counter()
        self._pairs = 0

    def insert(self, table: str, record) -> None:
        query = self._query
        if record.is_dummy:
            return
        in_left = table == query.left_table and query.left_predicate.evaluate(
            record
        )
        in_right = table == query.right_table and query.right_predicate.evaluate(
            record
        )
        if not in_left and not in_right:
            return
        left_key = record.get(query.left_attribute) if in_left else None
        right_key = record.get(query.right_attribute) if in_right else None
        if in_left:
            self._pairs += self._right[left_key]
        if in_right:
            self._pairs += self._left[right_key]
        if in_left and in_right and left_key == right_key:
            # The record joins with itself once.
            self._pairs += 1
        if in_left:
            self._left[left_key] += 1
        if in_right:
            self._right[right_key] += 1

    def answer(self, time: int | None = None) -> Answer:
        return self._pairs


class _MultiJoinCountState:
    """Maintains a star-join count via one key histogram per join side.

    The count is ``sum_k prod_i H_i[k]``; the insert delta telescopes the
    product one side at a time (sides already updated for this record use
    their *new* histogram, later sides their old one), which stays exact even
    when one record matches several sides of the same star.
    """

    def __init__(self, query: MultiJoinCountQuery) -> None:
        self._query = query
        self._sides: list[Counter] = [Counter() for _ in query.join_tables]
        self._pairs = 0

    def insert(self, table: str, record) -> None:
        if record.is_dummy:
            return
        for index, (side_table, attribute, predicate) in enumerate(
            self._query.sides()
        ):
            if table != side_table or not predicate.evaluate(record):
                continue
            key = record.get(attribute)
            delta = 1
            for other_index, histogram in enumerate(self._sides):
                if other_index == index:
                    continue
                delta *= histogram[key]
                if not delta:
                    break
            self._pairs += delta
            self._sides[index][key] += 1

    def answer(self, time: int | None = None) -> Answer:
        return self._pairs


class _WindowedCountState:
    """Maintains a windowed count via a ring buffer of per-tick bucket sums.

    Slot ``tick % window`` holds the filtered count of arrivals at ``tick``;
    a newer arrival landing on an occupied slot evicts a bucket that is at
    least ``window`` ticks older, which no later (monotone-time) query window
    can contain, so answers stay exact.  ``answer`` sums the <= ``window``
    live buckets inside the query's window bounds -- O(window), independent
    of the database size.
    """

    def __init__(self, query: WindowedCountQuery) -> None:
        self._query = query
        self._counts = [0] * query.window
        self._ticks: list[int | None] = [None] * query.window
        self._max_tick: int | None = None

    def insert(self, table: str, record) -> None:
        query = self._query
        if table != query.table or record.is_dummy:
            return
        if not query.predicate.evaluate(record):
            return
        tick = record.arrival_time
        slot = tick % query.window
        held = self._ticks[slot]
        if held is not None and held > tick:
            # Out-of-order arrival older than the retained horizon: it can
            # never fall inside a window queried at or after the newer tick.
            return
        if held != tick:
            self._ticks[slot] = tick
            self._counts[slot] = 0
        self._counts[slot] += 1
        if self._max_tick is None or tick > self._max_tick:
            self._max_tick = tick

    def answer(self, time: int | None = None) -> Answer:
        if time is None:
            raise ValueError(
                f"windowed query {self._query.name!r} needs a query time"
            )
        if self._max_tick is not None and time < self._max_tick:
            # The ring retains only the newest `window` ticks; a window
            # ending before the newest ingested arrival may reach evicted
            # buckets.  (Never hit under the simulator's monotone clock,
            # where queries at time t only follow arrivals <= t.)
            raise StaleWindowError(
                f"windowed query {self._query.name!r} asked at time {time} "
                f"behind the retained horizon (newest tick {self._max_tick})"
            )
        start, end = self._query.window_bounds(time)
        total = 0
        for slot, tick in enumerate(self._ticks):
            if tick is not None and start < tick <= end:
                total += self._counts[slot]
        return total


_STATE_TYPES = {
    CountQuery: _CountState,
    ModCountQuery: _ModCountState,
    GroupByCountQuery: _GroupByCountState,
    JoinCountQuery: _JoinCountState,
    MultiJoinCountQuery: _MultiJoinCountState,
    WindowedCountQuery: _WindowedCountState,
}


def can_maintain(query: Query) -> bool:
    """Whether ``query`` belongs to the delta-maintainable fragment.

    The *single* coverage predicate: both the server-side
    :class:`ViewRegistry` and the analyst-side
    :class:`~repro.query.incremental.IncrementalTruth` delegate here, so the
    two sides can never drift.
    """
    return type(query) in _STATE_TYPES


def maintained_shapes() -> tuple[type, ...]:
    """The query classes of the maintainable fragment."""
    return tuple(_STATE_TYPES)


def make_state(query: Query):
    """Fresh maintained state for one query (raises for uncovered shapes)."""
    try:
        state_type = _STATE_TYPES[type(query)]
    except KeyError:
        raise TypeError(
            f"query shape {type(query).__name__} is not delta-maintainable"
        ) from None
    return state_type(query)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class ViewRegistry:
    """A set of delta-maintained views keyed by their defining query.

    ``register`` bootstraps a view from the current table contents (in table
    insertion order, so bootstrap and incremental maintenance produce the
    same group orders); ``apply_delta`` feeds one post-flush batch to every
    view observing the batch's table; ``answer`` reads the maintained state.
    """

    def __init__(self) -> None:
        self._states: dict[Query, object] = {}

    def __len__(self) -> int:
        return len(self._states)

    def __bool__(self) -> bool:
        return bool(self._states)

    @staticmethod
    def can_maintain(query: Query) -> bool:
        return can_maintain(query)

    def covers(self, query: Query) -> bool:
        """Whether ``query`` is registered (maintained state exists)."""
        return query in self._states

    def registered(self) -> tuple[Query, ...]:
        """The registered queries, in registration order."""
        return tuple(self._states)

    def register(
        self,
        query: Query,
        tables: Mapping[str, Sequence] | None = None,
    ) -> bool:
        """Register ``query``, bootstrapping from ``tables`` when given.

        Returns ``False`` (and leaves existing state untouched) when the
        query is already registered, making registration idempotent across
        restore / re-setup paths.
        """
        if query in self._states:
            return False
        state = make_state(query)
        if tables:
            for table in query.tables:
                for record in tables.get(table, ()):
                    state.insert(table, record)
        self._states[query] = state
        return True

    def apply_delta(self, table: str, records: Iterable) -> int:
        """Feed one batch of ``table`` rows to every observing view.

        Returns the number of views that observe ``table`` (the cost model
        charges maintenance per view per record).
        """
        observers = [
            state
            for query, state in self._states.items()
            if table in query.tables
        ]
        if observers:
            for record in records:
                for state in observers:
                    state.insert(table, record)
        return len(observers)

    def views_on(self, table: str) -> int:
        """Number of registered views observing ``table``."""
        return sum(1 for query in self._states if table in query.tables)

    def answer(self, query: Query, time: int | None = None) -> Answer:
        """The maintained answer for a registered query."""
        try:
            state = self._states[query]
        except KeyError:
            raise KeyError(
                f"query {query.name!r} has no registered view"
            ) from None
        return state.answer(time)
