"""Query descriptions and relational-algebra plan nodes.

Two levels of abstraction are provided:

* **Query objects** (:class:`CountQuery`, :class:`GroupByCountQuery`,
  :class:`JoinCountQuery`) describe *what* is asked -- these are what the
  analyst submits and what the paper's Q1/Q2/Q3 map onto.
* **Plan nodes** (:class:`ScanNode`, :class:`FilterNode`, :class:`JoinNode`,
  ...) describe *how* the answer is computed; every query lowers to a plan via
  :meth:`Query.to_plan` and the dummy-aware rewriting of Appendix B operates
  on plans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.query.predicates import Predicate, TruePredicate

__all__ = [
    "AggregationKind",
    "Query",
    "CountQuery",
    "GroupByCountQuery",
    "JoinCountQuery",
    "PlanNode",
    "ScanNode",
    "FilterNode",
    "ProjectNode",
    "CrossProductNode",
    "GroupByCountNode",
    "JoinNode",
    "CountNode",
]


class AggregationKind(enum.Enum):
    """Kind of aggregation produced by a query."""

    SCALAR_COUNT = "scalar-count"
    GROUPED_COUNT = "grouped-count"


# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanNode:
    """Base class for relational-algebra plan nodes."""

    def children(self) -> tuple["PlanNode", ...]:
        """Child plan nodes (empty for leaves)."""
        return ()


@dataclass(frozen=True)
class ScanNode(PlanNode):
    """Scan of a base table."""

    table: str


@dataclass(frozen=True)
class FilterNode(PlanNode):
    """Filter ``phi(T, p)``: keep rows satisfying ``predicate``."""

    child: PlanNode
    predicate: Predicate

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class ProjectNode(PlanNode):
    """Project ``pi(T, A)``: keep only ``attributes``."""

    child: PlanNode
    attributes: tuple[str, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class CrossProductNode(PlanNode):
    """CrossProduct ``x(T, A_i, A_j)``: combine two attributes into one.

    The new attribute ``output`` holds the tuple ``(row[left], row[right])``.
    """

    child: PlanNode
    left: str
    right: str
    output: str

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class GroupByCountNode(PlanNode):
    """GroupBy ``chi(T, A')`` followed by a COUNT(*) per group."""

    child: PlanNode
    group_attribute: str

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """Inner equi-join of two inputs on ``left_attribute == right_attribute``."""

    left: PlanNode
    right: PlanNode
    left_attribute: str
    right_attribute: str

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class CountNode(PlanNode):
    """COUNT(*) of the child's output."""

    child: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


# ---------------------------------------------------------------------------
# Query objects
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Query:
    """Base class for analyst-facing queries."""

    @property
    def kind(self) -> AggregationKind:
        """Aggregation kind of the answer."""
        raise NotImplementedError

    @property
    def tables(self) -> tuple[str, ...]:
        """Tables referenced by the query."""
        raise NotImplementedError

    def to_plan(self) -> PlanNode:
        """Lower the query to a relational-algebra plan."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        """Short label used in reports (override when parsed from SQL)."""
        return type(self).__name__


@dataclass(frozen=True)
class CountQuery(Query):
    """``SELECT COUNT(*) FROM table WHERE predicate`` (the paper's Q1 shape)."""

    table: str
    predicate: Predicate = field(default_factory=TruePredicate)
    label: str = "CountQuery"

    @property
    def kind(self) -> AggregationKind:
        return AggregationKind.SCALAR_COUNT

    @property
    def tables(self) -> tuple[str, ...]:
        return (self.table,)

    @property
    def name(self) -> str:
        return self.label

    def to_plan(self) -> PlanNode:
        return CountNode(FilterNode(ScanNode(self.table), self.predicate))


@dataclass(frozen=True)
class GroupByCountQuery(Query):
    """``SELECT g, COUNT(*) FROM table [WHERE p] GROUP BY g`` (Q2 shape)."""

    table: str
    group_attribute: str
    predicate: Predicate = field(default_factory=TruePredicate)
    label: str = "GroupByCountQuery"

    @property
    def kind(self) -> AggregationKind:
        return AggregationKind.GROUPED_COUNT

    @property
    def tables(self) -> tuple[str, ...]:
        return (self.table,)

    @property
    def name(self) -> str:
        return self.label

    def to_plan(self) -> PlanNode:
        return GroupByCountNode(
            FilterNode(ScanNode(self.table), self.predicate), self.group_attribute
        )


@dataclass(frozen=True)
class JoinCountQuery(Query):
    """``SELECT COUNT(*) FROM L INNER JOIN R ON L.a = R.b`` (Q3 shape)."""

    left_table: str
    right_table: str
    left_attribute: str
    right_attribute: str
    left_predicate: Predicate = field(default_factory=TruePredicate)
    right_predicate: Predicate = field(default_factory=TruePredicate)
    label: str = "JoinCountQuery"

    @property
    def kind(self) -> AggregationKind:
        return AggregationKind.SCALAR_COUNT

    @property
    def tables(self) -> tuple[str, ...]:
        return (self.left_table, self.right_table)

    @property
    def name(self) -> str:
        return self.label

    def to_plan(self) -> PlanNode:
        left = FilterNode(ScanNode(self.left_table), self.left_predicate)
        right = FilterNode(ScanNode(self.right_table), self.right_predicate)
        return CountNode(
            JoinNode(left, right, self.left_attribute, self.right_attribute)
        )
