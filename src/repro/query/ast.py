"""Query descriptions and relational-algebra plan nodes.

Two levels of abstraction are provided:

* **Query objects** (:class:`CountQuery`, :class:`GroupByCountQuery`,
  :class:`JoinCountQuery`, plus the maintained-fragment extensions
  :class:`ModCountQuery`, :class:`MultiJoinCountQuery` and
  :class:`WindowedCountQuery`) describe *what* is asked -- these are what the
  analyst submits and what the paper's Q1/Q2/Q3 map onto.
* **Plan nodes** (:class:`ScanNode`, :class:`FilterNode`, :class:`JoinNode`,
  ...) describe *how* the answer is computed; every query lowers to a plan via
  :meth:`Query.to_plan` and the dummy-aware rewriting of Appendix B operates
  on plans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.query.predicates import Predicate, TruePredicate

__all__ = [
    "AggregationKind",
    "Query",
    "CountQuery",
    "GroupByCountQuery",
    "JoinCountQuery",
    "ModCountQuery",
    "MultiJoinCountQuery",
    "WindowedCountQuery",
    "PlanNode",
    "ScanNode",
    "FilterNode",
    "ProjectNode",
    "CrossProductNode",
    "GroupByCountNode",
    "JoinNode",
    "CountNode",
]


class AggregationKind(enum.Enum):
    """Kind of aggregation produced by a query."""

    SCALAR_COUNT = "scalar-count"
    GROUPED_COUNT = "grouped-count"


# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanNode:
    """Base class for relational-algebra plan nodes."""

    def children(self) -> tuple["PlanNode", ...]:
        """Child plan nodes (empty for leaves)."""
        return ()


@dataclass(frozen=True)
class ScanNode(PlanNode):
    """Scan of a base table."""

    table: str


@dataclass(frozen=True)
class FilterNode(PlanNode):
    """Filter ``phi(T, p)``: keep rows satisfying ``predicate``."""

    child: PlanNode
    predicate: Predicate

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class ProjectNode(PlanNode):
    """Project ``pi(T, A)``: keep only ``attributes``."""

    child: PlanNode
    attributes: tuple[str, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class CrossProductNode(PlanNode):
    """CrossProduct ``x(T, A_i, A_j)``: combine two attributes into one.

    The new attribute ``output`` holds the tuple ``(row[left], row[right])``.
    """

    child: PlanNode
    left: str
    right: str
    output: str

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class GroupByCountNode(PlanNode):
    """GroupBy ``chi(T, A')`` followed by a COUNT(*) per group."""

    child: PlanNode
    group_attribute: str

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """Inner equi-join of two inputs on ``left_attribute == right_attribute``."""

    left: PlanNode
    right: PlanNode
    left_attribute: str
    right_attribute: str

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class CountNode(PlanNode):
    """COUNT(*) of the child's output."""

    child: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


# ---------------------------------------------------------------------------
# Query objects
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Query:
    """Base class for analyst-facing queries."""

    @property
    def kind(self) -> AggregationKind:
        """Aggregation kind of the answer."""
        raise NotImplementedError

    @property
    def tables(self) -> tuple[str, ...]:
        """Tables referenced by the query."""
        raise NotImplementedError

    def to_plan(self) -> PlanNode:
        """Lower the query to a relational-algebra plan."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        """Short label used in reports (override when parsed from SQL)."""
        return type(self).__name__

    def finalize_answer(self, answer):
        """Post-aggregation finishing step applied to the plan's raw answer.

        The identity for most shapes; :class:`ModCountQuery` reduces the raw
        count modulo its modulus here, so plan execution (row interpreter and
        columnar alike) stays a plain count.
        """
        return answer


@dataclass(frozen=True)
class CountQuery(Query):
    """``SELECT COUNT(*) FROM table WHERE predicate`` (the paper's Q1 shape)."""

    table: str
    predicate: Predicate = field(default_factory=TruePredicate)
    label: str = "CountQuery"

    @property
    def kind(self) -> AggregationKind:
        return AggregationKind.SCALAR_COUNT

    @property
    def tables(self) -> tuple[str, ...]:
        return (self.table,)

    @property
    def name(self) -> str:
        return self.label

    def to_plan(self) -> PlanNode:
        return CountNode(FilterNode(ScanNode(self.table), self.predicate))


@dataclass(frozen=True)
class GroupByCountQuery(Query):
    """``SELECT g, COUNT(*) FROM table [WHERE p] GROUP BY g`` (Q2 shape)."""

    table: str
    group_attribute: str
    predicate: Predicate = field(default_factory=TruePredicate)
    label: str = "GroupByCountQuery"

    @property
    def kind(self) -> AggregationKind:
        return AggregationKind.GROUPED_COUNT

    @property
    def tables(self) -> tuple[str, ...]:
        return (self.table,)

    @property
    def name(self) -> str:
        return self.label

    def to_plan(self) -> PlanNode:
        return GroupByCountNode(
            FilterNode(ScanNode(self.table), self.predicate), self.group_attribute
        )


@dataclass(frozen=True)
class JoinCountQuery(Query):
    """``SELECT COUNT(*) FROM L INNER JOIN R ON L.a = R.b`` (Q3 shape)."""

    left_table: str
    right_table: str
    left_attribute: str
    right_attribute: str
    left_predicate: Predicate = field(default_factory=TruePredicate)
    right_predicate: Predicate = field(default_factory=TruePredicate)
    label: str = "JoinCountQuery"

    @property
    def kind(self) -> AggregationKind:
        return AggregationKind.SCALAR_COUNT

    @property
    def tables(self) -> tuple[str, ...]:
        return (self.left_table, self.right_table)

    @property
    def name(self) -> str:
        return self.label

    def to_plan(self) -> PlanNode:
        left = FilterNode(ScanNode(self.left_table), self.left_predicate)
        right = FilterNode(ScanNode(self.right_table), self.right_predicate)
        return CountNode(
            JoinNode(left, right, self.left_attribute, self.right_attribute)
        )


@dataclass(frozen=True)
class ModCountQuery(Query):
    """``SELECT COUNT(*) % m FROM table WHERE predicate`` (FO+MOD counting).

    The modulo/parity fragment of Berkholz et al.: the answer is the filtered
    count reduced modulo ``modulus`` (``modulus=2`` is parity).  Plan
    execution computes the plain count; :meth:`finalize_answer` applies the
    reduction, and sharded partials merge by sum-then-re-mod (a valid
    homomorphism: ``(a mod m + b mod m) mod m == (a + b) mod m``).
    """

    table: str
    modulus: int = 2
    predicate: Predicate = field(default_factory=TruePredicate)
    label: str = "ModCountQuery"

    def __post_init__(self) -> None:
        if self.modulus < 1:
            raise ValueError("modulus must be >= 1")

    @property
    def kind(self) -> AggregationKind:
        return AggregationKind.SCALAR_COUNT

    @property
    def tables(self) -> tuple[str, ...]:
        return (self.table,)

    @property
    def name(self) -> str:
        return self.label

    def finalize_answer(self, answer):
        return answer % self.modulus

    def to_plan(self) -> PlanNode:
        return CountNode(FilterNode(ScanNode(self.table), self.predicate))


@dataclass(frozen=True)
class MultiJoinCountQuery(Query):
    """Multi-way (>= 2 table) star join count on one shared key.

    ``SELECT COUNT(*) FROM T1, T2, ..., Tm WHERE T1.a1 = T2.a2 AND
    T1.a1 = T3.a3 AND ...`` -- every side equi-joins the same logical key, so
    the count is ``sum_k prod_i H_i[k]`` over the per-side key histograms
    ``H_i``.  This is exactly the q-hierarchical fragment Berkholz et al.
    show maintainable with constant-time updates: inserting a record with key
    ``k`` into side ``i`` adds ``prod_{j != i} H_j[k]`` pairs.  General
    (non-star) join orders are deliberately out of scope.
    """

    join_tables: tuple[str, ...]
    attributes: tuple[str, ...]
    predicates: tuple[Predicate, ...] = ()
    label: str = "MultiJoinCountQuery"

    def __post_init__(self) -> None:
        object.__setattr__(self, "join_tables", tuple(self.join_tables))
        object.__setattr__(self, "attributes", tuple(self.attributes))
        if len(self.join_tables) < 2:
            raise ValueError("a multi-way join needs at least two tables")
        if len(self.attributes) != len(self.join_tables):
            raise ValueError("one join attribute is required per table")
        predicates = tuple(self.predicates)
        if not predicates:
            predicates = tuple(TruePredicate() for _ in self.join_tables)
        if len(predicates) != len(self.join_tables):
            raise ValueError("one predicate is required per table")
        object.__setattr__(self, "predicates", predicates)

    @property
    def kind(self) -> AggregationKind:
        return AggregationKind.SCALAR_COUNT

    @property
    def tables(self) -> tuple[str, ...]:
        return self.join_tables

    @property
    def name(self) -> str:
        return self.label

    def sides(self) -> tuple[tuple[str, str, Predicate], ...]:
        """The join sides as ``(table, attribute, predicate)`` triples."""
        return tuple(
            zip(self.join_tables, self.attributes, self.predicates)
        )

    def to_plan(self) -> PlanNode:
        # Left-deep cascade of binary joins, each probing the first table's
        # key attribute (which the hash join preserves on the merged row), so
        # the row interpreter computes the star-join count without multi-way
        # machinery.  The columnar executor falls back to this plan too.
        plan: PlanNode = FilterNode(
            ScanNode(self.join_tables[0]), self.predicates[0]
        )
        for table, attribute, predicate in self.sides()[1:]:
            plan = JoinNode(
                plan,
                FilterNode(ScanNode(table), predicate),
                self.attributes[0],
                attribute,
            )
        return CountNode(plan)


@dataclass(frozen=True)
class WindowedCountQuery(Query):
    """``SELECT COUNT(*) FROM table WHERE predicate`` over a recency window.

    A temporal operator: at query time ``t`` the answer counts records whose
    ``arrival_time`` lies in the current window.  ``mode="sliding"`` uses the
    trailing window ``(t - window, t]``; ``mode="tumbling"`` aligns windows to
    the fixed grid ``((k-1) * window, k * window]`` and counts the one
    containing ``t`` up to ``t`` itself.  Answered from a ring buffer of
    per-tick bucket sums when maintained; the executor keeps a reference
    rescan path as the differential oracle.
    """

    table: str
    window: int
    mode: str = "sliding"
    predicate: Predicate = field(default_factory=TruePredicate)
    label: str = "WindowedCountQuery"

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1 tick")
        if self.mode not in ("sliding", "tumbling"):
            raise ValueError(
                f"unknown window mode {self.mode!r}; "
                "expected 'sliding' or 'tumbling'"
            )

    @property
    def kind(self) -> AggregationKind:
        return AggregationKind.SCALAR_COUNT

    @property
    def tables(self) -> tuple[str, ...]:
        return (self.table,)

    @property
    def name(self) -> str:
        return self.label

    def window_bounds(self, time: int) -> tuple[int, int]:
        """Half-open-below bounds ``(start, end]`` of the window at ``time``.

        The single source of window semantics, shared by the executor's
        rescan oracle and the maintained ring buffer.
        """
        if self.mode == "sliding":
            return time - self.window, time
        start = ((time - 1) // self.window) * self.window
        return start, time

    def to_plan(self) -> PlanNode:
        raise TypeError(
            "windowed queries are evaluated relative to a query time; "
            "the executor answers them directly instead of lowering to a plan"
        )
