"""Dummy-aware query rewriting (Appendix B).

The outsourced database stores dummy records that are indistinguishable from
real records once encrypted.  So that analyst answers are not distorted by the
dummies, every relational operator is rewritten to ignore records whose
``isDummy`` attribute is true:

* ``Filter(T, p)``           -> ``Filter(T, p AND NOT isDummy)``
* ``Project(T, A)``          -> ``Project(Filter(T, NOT isDummy), A)``
* ``CrossProduct(T, Ai, Aj)``-> applied after a ``NOT isDummy`` filter
* ``GroupBy(T, A')``         -> grouped only over rows with ``NOT isDummy``
* ``Join(T1, T2, c)``        -> ``Join(Filter(T1, ...), Filter(T2, ...), c)``

The rewriting happens inside the EDB's (simulated) oblivious query protocol,
which is legitimate because the protocol already hides access patterns and
response volumes; it must *not* be applied by schemes that leak size patterns
(see Section 6 / Appendix B discussion).
"""

from __future__ import annotations

from repro.query.ast import (
    CountNode,
    CrossProductNode,
    FilterNode,
    GroupByCountNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    Query,
    ScanNode,
)
from repro.query.predicates import AndPredicate, NotDummyPredicate

__all__ = ["rewrite_plan", "rewrite_for_dummies"]


def rewrite_plan(plan: PlanNode) -> PlanNode:
    """Rewrite a relational plan so dummy records never affect results."""
    if isinstance(plan, ScanNode):
        # A bare scan is wrapped so downstream operators only see real rows.
        return FilterNode(plan, NotDummyPredicate())
    if isinstance(plan, FilterNode):
        child = plan.child
        # Avoid double-wrapping: the filter itself will carry the NOT-dummy
        # conjunct, so scan children are left bare.
        rewritten_child = child if isinstance(child, ScanNode) else rewrite_plan(child)
        predicate = AndPredicate((plan.predicate, NotDummyPredicate()))
        return FilterNode(rewritten_child, predicate)
    if isinstance(plan, ProjectNode):
        return ProjectNode(rewrite_plan(plan.child), plan.attributes)
    if isinstance(plan, CrossProductNode):
        return CrossProductNode(
            rewrite_plan(plan.child), plan.left, plan.right, plan.output
        )
    if isinstance(plan, GroupByCountNode):
        return GroupByCountNode(rewrite_plan(plan.child), plan.group_attribute)
    if isinstance(plan, JoinNode):
        return JoinNode(
            rewrite_plan(plan.left),
            rewrite_plan(plan.right),
            plan.left_attribute,
            plan.right_attribute,
        )
    if isinstance(plan, CountNode):
        return CountNode(rewrite_plan(plan.child))
    raise TypeError(f"unknown plan node type: {type(plan).__name__}")


def rewrite_for_dummies(query: Query) -> PlanNode:
    """Lower ``query`` to a plan and apply the dummy-aware rewriting."""
    return rewrite_plan(query.to_plan())


def plan_filters_dummies(plan: PlanNode) -> bool:
    """Whether every base-table scan in ``plan`` is guarded by a NOT-dummy filter.

    Used by tests to assert the rewriting is complete: no path from a scan to
    the root may avoid a :class:`NotDummyPredicate`.
    """
    return _guarded(plan, guarded=False)


def _guarded(plan: PlanNode, guarded: bool) -> bool:
    if isinstance(plan, ScanNode):
        return guarded
    if isinstance(plan, FilterNode):
        has_guard = guarded or _predicate_filters_dummies(plan.predicate)
        return _guarded(plan.child, has_guard)
    return all(_guarded(child, guarded) for child in plan.children())


def _predicate_filters_dummies(predicate) -> bool:
    if isinstance(predicate, NotDummyPredicate):
        return True
    if isinstance(predicate, AndPredicate):
        return any(_predicate_filters_dummies(child) for child in predicate.children)
    return False
