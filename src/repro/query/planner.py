"""Cost-based planning of scatter-gather queries over sharded back-ends.

The scatter layer (:mod:`repro.query.scatter`,
:class:`repro.edb.router.ShardRouter`) executes every query one way: fan out
to all K shards, merge.  This module adds a :class:`QueryPlanner` that, per
query, enumerates *observable-identical* alternatives and picks the cheapest:

* **shard pruning** -- the router's partition metadata (per-table routed
  record counts, a pure function of the replay-deterministic routing hash)
  proves which shards can hold records of the query's tables; shards holding
  none would answer ``0`` / ``{}`` with a floor QET of ``query_base``, so
  skipping them changes no gathered observable on exact back-ends.  Pruning
  is disabled on L-DP back-ends, where even an empty shard's answer carries
  a noise draw the gathered sum must include;
* **executor choice** -- columnar vs row-interpreter execution per shard
  (:meth:`~repro.edb.base.EncryptedDatabase.query_executors`), bit-identical
  in answers and work counters by the fast-path differential contract;
* **join probe ordering** -- probe the predicted-smaller side first and
  reuse its merged histogram cardinality for a UES-style upper bound on the
  second probe's contribution (:func:`repro.query.scatter.join_upper_bound`).
  The dot product is symmetric and per-shard QET sums both probes, so order
  never changes an observable.

Each alternative is costed with the scheme's :class:`~repro.edb.cost_model.
CostModel` (total simulated work across the shards it touches), then the
estimate is corrected by a :class:`RuntimeCalibrator` -- a per-(query shape,
backend, executor) runtime regressor fit online from the router's *measured*
wall-clock ledger (:class:`~repro.edb.router.WallClockStats`), the BAO-style
learned-runtime loop of ROADMAP item 1.  Because every alternative yields
identical answers, QET observables and transcripts, the calibrator is free
to change its mind between runs without perturbing a single experiment
artifact -- the property the plan-invariance tests pin.

:meth:`QueryPlanner.explain` reports, per query, the chosen plan, estimated
vs measured cost, and why each alternative lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.query.ast import JoinCountQuery, MultiJoinCountQuery, Query
from repro.query.scatter import join_side_probes, multi_join_probes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.edb.cost_model import CostModel

__all__ = [
    "PLANNER_MODES",
    "PlanAlternative",
    "QueryPlan",
    "QueryPlanner",
    "RuntimeCalibrator",
    "resolve_planner_mode",
]

#: Planner modes on the simulation axis: ``"off"`` keeps the historical
#: always-fan-out behaviour (golden traces byte-identical), ``"on"`` routes
#: queries through a :class:`QueryPlanner`.
PLANNER_MODES = ("off", "on")


def resolve_planner_mode(mode: str) -> str:
    """Validate (and normalize) a planner-mode flag."""
    normalized = mode.lower()
    if normalized not in PLANNER_MODES:
        raise ValueError(
            f"planner mode must be one of {PLANNER_MODES}, got {mode!r}"
        )
    return normalized


def query_shape(query: Query) -> str:
    """Coarse query shape used as a calibration key component."""
    if isinstance(query, JoinCountQuery):
        return "join-count"
    if isinstance(query, MultiJoinCountQuery):
        return "multi-join-count"
    kind = getattr(query, "kind", None)
    return getattr(kind, "value", None) or type(query).__name__.lower()


@dataclass(frozen=True)
class PlanAlternative:
    """One concrete, observable-identical way to execute a scattered query."""

    #: Stable label, e.g. ``"fanout/columnar"`` or ``"prune/rows"``.
    key: str
    #: Shards the plan touches, in shard-index order (merge order).
    shard_indices: tuple[int, ...]
    #: Per-shard execution strategy (one of the shards' ``query_executors``).
    executor: str
    #: For joins: which side's probe runs first (``"left"``/``"right"``).
    first_side: str | None
    #: Total simulated QET across the touched shards (the cost-model score).
    simulated_work_seconds: float
    #: Calibrated wall-clock prediction for this alternative.
    predicted_seconds: float
    #: Whether a learned runtime ratio backed the prediction (False means
    #: the raw cost-model work was used as the prediction).
    calibrated: bool


@dataclass
class QueryPlan:
    """The planner's decision record for one query invocation."""

    query_name: str
    shape: str
    backend: str
    n_shards: int
    alternatives: tuple[PlanAlternative, ...]
    chosen: PlanAlternative
    reason: str
    calibration_key: tuple[str, str, str]
    forced: bool = False
    #: Filled in after execution by :meth:`QueryPlanner.observe`.
    measured_seconds: float | None = None
    #: Per-touched-shard simulated QETs actually executed (shard order).
    executed_qet_seconds: tuple[float, ...] = ()
    #: For joins: merged-histogram cardinality of the first probe and the
    #: UES-style bound it implies for the gathered join count.
    first_probe_cardinality: "int | float | None" = None
    join_upper_bound: "int | float | None" = None

    def explain(self) -> dict:
        """A JSON-friendly report: chosen plan, costs, why alternatives lost."""
        chosen = self.chosen

        def _alt(alt: PlanAlternative) -> dict:
            entry = {
                "plan": alt.key,
                "shards": list(alt.shard_indices),
                "executor": alt.executor,
                "simulated_work_seconds": alt.simulated_work_seconds,
                "predicted_seconds": alt.predicted_seconds,
                "calibrated": alt.calibrated,
                "chosen": alt is chosen,
            }
            if alt.first_side is not None:
                entry["first_side"] = alt.first_side
            if alt is chosen:
                entry["why"] = self.reason
            else:
                entry["why_lost"] = self._why_lost(alt)
            return entry

        report = {
            "query": self.query_name,
            "shape": self.shape,
            "backend": self.backend,
            "n_shards": self.n_shards,
            "chosen": chosen.key,
            "forced": self.forced,
            "reason": self.reason,
            "estimated_seconds": chosen.predicted_seconds,
            "measured_seconds": self.measured_seconds,
            "simulated_work_seconds": chosen.simulated_work_seconds,
            "executed_work_seconds": sum(self.executed_qet_seconds),
            "calibration_key": list(self.calibration_key),
            "alternatives": [_alt(alt) for alt in self.alternatives],
        }
        if self.first_probe_cardinality is not None:
            report["first_probe_cardinality"] = self.first_probe_cardinality
            report["join_upper_bound"] = self.join_upper_bound
        return report

    def _why_lost(self, alt: PlanAlternative) -> str:
        chosen = self.chosen
        if self.forced:
            return f"override forced {chosen.key}"
        if alt.predicted_seconds > chosen.predicted_seconds:
            return (
                f"predicted {alt.predicted_seconds:.3g}s vs "
                f"{chosen.predicted_seconds:.3g}s for {chosen.key}"
            )
        if alt.simulated_work_seconds > chosen.simulated_work_seconds:
            return (
                f"simulated work {alt.simulated_work_seconds:.3g}s vs "
                f"{chosen.simulated_work_seconds:.3g}s for {chosen.key}"
            )
        return f"tied with {chosen.key}; earlier-enumerated plan wins ties"


class RuntimeCalibrator:
    """Online per-(shape, backend, executor) runtime regressor.

    Cost-model scores are hardware-independent simulated seconds; measured
    wall clock is not.  The calibrator learns, per calibration key, the ratio
    between the two (``sum(measured) / sum(simulated work)`` -- a one-weight
    least-squares fit through the origin) and predicts runtime as
    ``ratio * work``.  Keys with fewer than :attr:`min_samples` observations
    fall back to the ratio pooled across all keys, then to the raw work --
    so cold-start predictions degrade gracefully to pure cost-model order,
    which is already correct for same-key comparisons like fan-out vs prune.
    """

    def __init__(self, min_samples: int = 2) -> None:
        self.min_samples = int(min_samples)
        self._per_key: dict[tuple[str, str, str], list[float]] = {}
        self._global = [0.0, 0.0, 0]  # [work, seconds, samples]

    def observe(
        self, key: tuple[str, str, str], work_seconds: float, measured_seconds: float
    ) -> None:
        """Fold one (simulated work, measured runtime) sample into the fit."""
        if work_seconds <= 0.0 or measured_seconds < 0.0:
            return
        entry = self._per_key.setdefault(key, [0.0, 0.0, 0])
        entry[0] += work_seconds
        entry[1] += measured_seconds
        entry[2] += 1
        self._global[0] += work_seconds
        self._global[1] += measured_seconds
        self._global[2] += 1

    def samples(self, key: tuple[str, str, str]) -> int:
        """Observations recorded for ``key``."""
        entry = self._per_key.get(key)
        return entry[2] if entry else 0

    def ratio(self, key: tuple[str, str, str]) -> float | None:
        """The learned seconds-per-simulated-second ratio for ``key``."""
        entry = self._per_key.get(key)
        if entry and entry[2] >= self.min_samples and entry[0] > 0.0:
            return entry[1] / entry[0]
        return None

    def predict(
        self, key: tuple[str, str, str], work_seconds: float
    ) -> tuple[float, bool]:
        """Predicted runtime for ``work_seconds`` of simulated work.

        Returns ``(seconds, calibrated)``; ``calibrated`` is False when no
        learned ratio (key-specific or pooled) backed the prediction.
        """
        ratio = self.ratio(key)
        if ratio is not None:
            return work_seconds * ratio, True
        if self._global[2] >= self.min_samples and self._global[0] > 0.0:
            return work_seconds * (self._global[1] / self._global[0]), True
        return work_seconds, False


#: Plan-override hook: receives the query and the enumerated alternatives,
#: returns the alternative to force (or its index or key), or ``None`` to
#: keep the planner's own choice.  Exists for the plan-invariance tests.
PlanOverride = Callable[[Query, Sequence[PlanAlternative]], "PlanAlternative | int | str | None"]


class QueryPlanner:
    """Enumerate, cost, calibrate and pick scatter plans; remember why.

    One planner instance lives on one :class:`~repro.edb.router.ShardRouter`
    and sees that router's queries; the router feeds measured runtimes back
    through :meth:`observe` after each gathered query.
    """

    def __init__(
        self,
        calibrator: RuntimeCalibrator | None = None,
        override: PlanOverride | None = None,
    ) -> None:
        self.calibrator = calibrator if calibrator is not None else RuntimeCalibrator()
        self.override = override
        self._plans: dict[str, QueryPlan] = {}

    # -- planning -------------------------------------------------------------

    def plan(
        self,
        query: Query,
        *,
        shard_tables: Sequence[Mapping[str, int]],
        cost_model: "CostModel",
        backend: str,
        executors: Sequence[str],
        allow_pruning: bool,
    ) -> QueryPlan:
        """Choose how to execute ``query`` over the sharded deployment.

        ``shard_tables[i]`` maps each of the query's tables to the number of
        records routed to shard ``i`` (the router's partition metadata);
        ``executors`` are the shards' supported execution strategies, default
        first; ``allow_pruning`` is False on noisy back-ends.
        """
        n_shards = len(shard_tables)
        full = tuple(range(n_shards))
        shard_sets: list[tuple[str, tuple[int, ...]]] = [("fanout", full)]
        if allow_pruning and n_shards > 1:
            holding = tuple(
                index
                for index, sizes in enumerate(shard_tables)
                if any(sizes.get(table, 0) for table in query.tables)
            )
            if holding != full:
                # No shard holds the table(s): mirror the empty-update
                # convention and keep shard 0 as the single round-trip.
                shard_sets.append(("prune", holding or (0,)))

        first_sides: tuple[str | None, ...] = (None,)
        if isinstance(query, JoinCountQuery):
            first_sides = self._probe_orders(query, shard_tables)

        shape = query_shape(query)
        alternatives: list[PlanAlternative] = []
        for set_name, indices in shard_sets:
            rescan_works = self._work(query, indices, shard_tables, cost_model)
            for executor in executors:
                works = (
                    self._maintained_work(query, indices, cost_model)
                    if executor == "maintained"
                    else rescan_works
                )
                key = (shape, backend, executor)
                for first_side in first_sides:
                    label = f"{set_name}/{executor}"
                    if first_side is not None:
                        label += f"/{first_side}-first"
                    predicted, calibrated = self.calibrator.predict(key, works)
                    alternatives.append(
                        PlanAlternative(
                            key=label,
                            shard_indices=indices,
                            executor=executor,
                            first_side=first_side,
                            simulated_work_seconds=works,
                            predicted_seconds=predicted,
                            calibrated=calibrated,
                        )
                    )

        chosen, reason, forced = self._choose(query, alternatives)
        plan = QueryPlan(
            query_name=query.name,
            shape=shape,
            backend=backend,
            n_shards=n_shards,
            alternatives=tuple(alternatives),
            chosen=chosen,
            reason=reason,
            calibration_key=(shape, backend, chosen.executor),
            forced=forced,
        )
        self._plans[query.name] = plan
        return plan

    def _work(
        self,
        query: Query,
        indices: Sequence[int],
        shard_tables: Sequence[Mapping[str, int]],
        cost_model: "CostModel",
    ) -> float:
        """Total simulated QET the cost model charges across ``indices``.

        Joins are charged as their two scattered group-by probes -- what the
        shards actually execute -- not the quadratic single-machine join.
        """
        if isinstance(query, JoinCountQuery):
            probes: "tuple[Query, ...]" = join_side_probes(query)
        elif isinstance(query, MultiJoinCountQuery):
            probes = multi_join_probes(query)
        else:
            return sum(
                cost_model.query_cost(query, dict(shard_tables[index]))
                for index in indices
            )
        return sum(
            cost_model.query_cost(probe, dict(shard_tables[index]))
            for index in indices
            for probe in probes
        )

    def _maintained_work(
        self,
        query: Query,
        indices: Sequence[int],
        cost_model: "CostModel",
    ) -> float:
        """Simulated work of answering from maintained view state instead.

        Each touched shard emits its maintained answer (one emission per
        scatter probe for the join shapes) -- the per-query protocol base
        survives, the per-record scan work disappears.
        """
        probes = 1
        if isinstance(query, JoinCountQuery):
            probes = 2
        elif isinstance(query, MultiJoinCountQuery):
            probes = len(query.join_tables)
        return len(indices) * probes * cost_model.maintained_query_cost(query)

    def _probe_orders(
        self, query: JoinCountQuery, shard_tables: Sequence[Mapping[str, int]]
    ) -> tuple[str, ...]:
        """Probe-order alternatives, predicted-smaller side first.

        Both orders execute identical work, so the cost model cannot split
        them; the smaller-side-first order is enumerated first and wins the
        tie, maximizing how early the UES-style cardinality bound binds.
        """
        left_total = sum(sizes.get(query.left_table, 0) for sizes in shard_tables)
        right_total = sum(sizes.get(query.right_table, 0) for sizes in shard_tables)
        if right_total < left_total:
            return ("right", "left")
        return ("left", "right")

    def _choose(
        self, query: Query, alternatives: Sequence[PlanAlternative]
    ) -> tuple[PlanAlternative, str, bool]:
        if self.override is not None:
            forced = self.override(query, alternatives)
            if forced is not None:
                if isinstance(forced, int):
                    forced = alternatives[forced]
                elif isinstance(forced, str):
                    matches = [alt for alt in alternatives if alt.key == forced]
                    if not matches:
                        raise KeyError(
                            f"override named unknown plan {forced!r}; "
                            f"have {[alt.key for alt in alternatives]}"
                        )
                    forced = matches[0]
                return forced, f"forced by override hook ({forced.key})", True
        best = min(
            range(len(alternatives)),
            key=lambda i: (
                alternatives[i].predicted_seconds,
                alternatives[i].simulated_work_seconds,
                i,
            ),
        )
        chosen = alternatives[best]
        basis = "calibrated runtime" if chosen.calibrated else "cost-model work"
        reason = (
            f"lowest {basis} ({chosen.predicted_seconds:.3g}s) over "
            f"{len(alternatives)} alternatives"
        )
        return chosen, reason, False

    # -- measured feedback and observability ----------------------------------

    def observe(self, plan: QueryPlan, measured_seconds: float) -> None:
        """Feed one executed plan's measured runtime back into the regressor."""
        plan.measured_seconds = measured_seconds
        self.calibrator.observe(
            plan.calibration_key, plan.chosen.simulated_work_seconds, measured_seconds
        )

    def last_plan(self, query: "Query | str") -> QueryPlan | None:
        """The most recent plan chosen for ``query`` (by query name)."""
        name = query if isinstance(query, str) else query.name
        return self._plans.get(name)

    def explain(self, query: "Query | str") -> dict | None:
        """Explain the most recent plan for ``query`` (None if never planned).

        The report carries the chosen plan, its estimated vs measured cost,
        every alternative with why it lost, and the calibration state backing
        the prediction.
        """
        plan = self.last_plan(query)
        if plan is None:
            return None
        report = plan.explain()
        report["calibration"] = {
            "samples": self.calibrator.samples(plan.calibration_key),
            "ratio": self.calibrator.ratio(plan.calibration_key),
        }
        return report
