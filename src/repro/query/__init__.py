"""Query substrate: predicates, relational operators, rewriting and execution.

The paper evaluates three queries (Section 8):

* **Q1** -- a linear range count over ``YellowCab.pickupID``;
* **Q2** -- a group-by count of pickups per location;
* **Q3** -- an inner-join count between Yellow Cab and Green Taxi on pickup
  time.

This package provides:

* :mod:`repro.query.predicates` -- composable predicates over records;
* :mod:`repro.query.ast` -- both high-level query descriptions
  (:class:`CountQuery`, :class:`GroupByCountQuery`, :class:`JoinCountQuery`)
  and the relational-algebra plan nodes (Filter/Project/GroupBy/Join/...)
  used by query rewriting;
* :mod:`repro.query.rewriter` -- the dummy-aware query rewriting of
  Appendix B (each operator is augmented with ``isDummy = False`` filters);
* :mod:`repro.query.executor` -- a plaintext executor used both for ground
  truth on the logical database and, inside the EDB simulators, for the
  "enclave-side" evaluation over outsourced records;
* :mod:`repro.query.sql` -- a tiny SQL front-end that parses the paper's
  three query strings into AST objects;
* :mod:`repro.query.scatter` -- deterministic partial-aggregate merging for
  scatter-gather evaluation over sharded back-ends
  (:class:`repro.edb.router.ShardRouter`);
* :mod:`repro.query.planner` -- cost-based planning of those scattered
  queries (shard pruning, per-shard executor choice, join probe ordering),
  calibrated online against the router's measured wall-clock ledger.
"""

from repro.query.predicates import (
    AndPredicate,
    EqualityPredicate,
    NotDummyPredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
    RangePredicate,
    TruePredicate,
)
from repro.query.ast import (
    AggregationKind,
    CountQuery,
    CrossProductNode,
    FilterNode,
    GroupByCountNode,
    GroupByCountQuery,
    JoinCountQuery,
    JoinNode,
    PlanNode,
    ProjectNode,
    Query,
    ScanNode,
)
from repro.query.rewriter import rewrite_for_dummies, rewrite_plan
from repro.query.executor import PlaintextExecutor, execute_plan, ground_truth
from repro.query.planner import (
    PLANNER_MODES,
    PlanAlternative,
    QueryPlan,
    QueryPlanner,
    RuntimeCalibrator,
    resolve_planner_mode,
)
from repro.query.scatter import (
    join_count_from_histograms,
    join_upper_bound,
    merge_grouped_counts,
    merge_scalar_counts,
    ordered_join_probes,
)
from repro.query.sql import parse_query

__all__ = [
    "AggregationKind",
    "AndPredicate",
    "CountQuery",
    "PLANNER_MODES",
    "PlanAlternative",
    "QueryPlan",
    "QueryPlanner",
    "RuntimeCalibrator",
    "CrossProductNode",
    "EqualityPredicate",
    "FilterNode",
    "GroupByCountNode",
    "GroupByCountQuery",
    "JoinCountQuery",
    "JoinNode",
    "NotDummyPredicate",
    "NotPredicate",
    "OrPredicate",
    "PlaintextExecutor",
    "PlanNode",
    "Predicate",
    "ProjectNode",
    "Query",
    "RangePredicate",
    "ScanNode",
    "TruePredicate",
    "execute_plan",
    "ground_truth",
    "join_count_from_histograms",
    "join_upper_bound",
    "merge_grouped_counts",
    "merge_scalar_counts",
    "ordered_join_probes",
    "parse_query",
    "resolve_planner_mode",
    "rewrite_for_dummies",
    "rewrite_plan",
]
