"""Scatter-gather query evaluation over sharded encrypted databases.

When a table's records are hash-partitioned across K independent EDB shards
(:class:`repro.edb.router.ShardRouter`), the paper's three query shapes all
decompose into *partial aggregates* computed per shard plus a cheap,
deterministic merge at the coordinator -- the classic distributed
aggregation/join-evaluation move (cf. PANDA-style join decomposition and the
incremental-maintenance view of counts under updates):

* ``COUNT(*) WHERE p``           -- per-shard counts, merged by summation;
* ``... GROUP BY g``             -- per-shard group histograms, merged by
  per-key summation with keys kept in first-appearance order across shards
  (shard order first, per-shard order within);
* ``COUNT(*)`` of an equi-join   -- per-shard *per-side key histograms*
  (a join over hash-partitioned sides cannot be summed shard-locally:
  a left record on shard 0 joins right records on shard 1), merged into
  global per-side histograms whose dot product is the exact join count.

Every merge is pure integer/float arithmetic over the shard answers, so for
*exact* back-ends (ObliDB's L-0 answers) the gathered answer over K shards
equals the answer the unsharded back-end computes over the union of the
shards' records -- the property the fleet benchmarks assert at every query
point.  On an L-DP back-end (Crypt-epsilon) each shard perturbs its partial
answer independently, so the gathered answer carries the *sum* of K noise
draws (K-fold variance): semantically each shard is its own L-DP EDB, but
sharding is not accuracy-free there the way it is on exact back-ends.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.query.ast import GroupByCountQuery, JoinCountQuery

__all__ = [
    "merge_scalar_counts",
    "merge_grouped_counts",
    "join_count_from_histograms",
    "join_side_probes",
]


def merge_scalar_counts(parts: Sequence[int | float]) -> int | float:
    """Gather a scalar count: the sum of the per-shard partial counts.

    The sum stays an ``int`` when every part is integral (exact back-ends),
    and becomes a ``float`` as soon as any shard answered with DP noise left
    unrounded.
    """
    return sum(parts)


def merge_grouped_counts(parts: Sequence[Mapping]) -> dict:
    """Gather per-group counts: per-key summation, first-appearance order.

    Keys appear in the order shards are visited and, within one shard, in
    that shard's answer order -- a deterministic function of the shard
    contents, which keeps gathered answers reproducible at a fixed seed.
    """
    merged: dict = {}
    for part in parts:
        for key, count in part.items():
            merged[key] = merged.get(key, 0) + count
    return merged


def join_count_from_histograms(left: Mapping, right: Mapping) -> int:
    """Join count from global per-side key histograms: ``sum_k L[k] * R[k]``.

    Iterating the smaller histogram keeps the merge ``O(min(|L|, |R|))``
    regardless of how many shards contributed.
    """
    if len(right) < len(left):
        left, right = right, left
    return int(
        sum(count * right[key] for key, count in left.items() if key in right)
    )


def join_side_probes(query: JoinCountQuery) -> tuple[GroupByCountQuery, GroupByCountQuery]:
    """The two per-shard probe queries a join count scatters into.

    Each probe is an ordinary group-by-count over one side's join attribute
    (with that side's predicate), so shards evaluate it through their normal
    Query protocol -- dummy-aware rewriting and the columnar fast path
    included -- and the coordinator merges the resulting histograms.
    """
    left = GroupByCountQuery(
        table=query.left_table,
        group_attribute=query.left_attribute,
        predicate=query.left_predicate,
        label=f"{query.name}/scatter-left",
    )
    right = GroupByCountQuery(
        table=query.right_table,
        group_attribute=query.right_attribute,
        predicate=query.right_predicate,
        label=f"{query.name}/scatter-right",
    )
    return left, right
