"""Scatter-gather query evaluation over sharded encrypted databases.

When a table's records are hash-partitioned across K independent EDB shards
(:class:`repro.edb.router.ShardRouter`), the paper's three query shapes all
decompose into *partial aggregates* computed per shard plus a cheap,
deterministic merge at the coordinator -- the classic distributed
aggregation/join-evaluation move (cf. PANDA-style join decomposition and the
incremental-maintenance view of counts under updates):

* ``COUNT(*) WHERE p``           -- per-shard counts, merged by summation;
* ``... GROUP BY g``             -- per-shard group histograms, merged by
  per-key summation with keys kept in first-appearance order across shards
  (shard order first, per-shard order within);
* ``COUNT(*)`` of an equi-join   -- per-shard *per-side key histograms*
  (a join over hash-partitioned sides cannot be summed shard-locally:
  a left record on shard 0 joins right records on shard 1), merged into
  global per-side histograms whose dot product is the exact join count.

Every merge is pure integer/float arithmetic over the shard answers, so for
*exact* back-ends (ObliDB's L-0 answers) the gathered answer over K shards
equals the answer the unsharded back-end computes over the union of the
shards' records -- the property the fleet benchmarks assert at every query
point.  On an L-DP back-end (Crypt-epsilon) each shard perturbs its partial
answer independently, so the gathered answer carries the *sum* of K noise
draws (K-fold variance): semantically each shard is its own L-DP EDB, but
sharding is not accuracy-free there the way it is on exact back-ends.

Because the merges are deterministic functions of the per-shard partials
taken in shard-index order, the same plan runs unchanged on every router
executor -- sequential loop, thread pool, or persistent worker processes
(:mod:`repro.edb.shard_worker`); only where the partials are *computed*
moves, never what the coordinator gathers.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence, TypeVar

from repro.query.ast import (
    GroupByCountQuery,
    JoinCountQuery,
    ModCountQuery,
    MultiJoinCountQuery,
    Query,
)

__all__ = [
    "merge_scalar_counts",
    "merge_grouped_counts",
    "merge_partial_answers",
    "join_count_from_histograms",
    "join_side_probes",
    "join_upper_bound",
    "multi_join_count_from_histograms",
    "multi_join_probes",
    "ordered_join_probes",
    "scatter_map",
    "drain_futures",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def scatter_map(
    executor_map: "Callable[[Callable[[_T], _R], Sequence[_T]], list[_R]] | None",
    fn: Callable[[_T], _R],
    items: Sequence[_T],
) -> list[_R]:
    """Apply ``fn`` to every item, preserving item order in the result.

    ``executor_map`` is the pluggable scatter primitive (e.g. a thread pool's
    ``map`` wrapped to return a list); ``None`` means sequential execution.
    Because each item is an independent shard and the gather step merges the
    returned partials *in item order*, the merged result is identical however
    the executor interleaves the calls -- the property the concurrency
    equivalence tests pin.
    """
    if executor_map is None or len(items) <= 1:
        return [fn(item) for item in items]
    return executor_map(fn, items)


def drain_futures(futures: Sequence) -> list:
    """Gather every scatter future, then raise the first failure (if any).

    The fan-out failure-propagation contract: when one shard call raises
    (e.g. :class:`~repro.edb.shard_worker.ShardWorkerDied` from a killed
    worker), the sibling calls are *drained* -- waited to completion --
    before the error propagates, instead of being abandoned mid-pipe the
    way a bare ``Executor.map`` would.  That guarantees no scatter thread
    is still touching a shard or its pipe when the caller starts recovery
    or teardown, and it makes the raised error deterministic: the first
    failure in item (shard) order, not in wall-clock completion order.
    """
    error: BaseException | None = None
    results: list = []
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as exc:  # noqa: BLE001 - re-raised after drain
            if error is None:
                error = exc
            results.append(None)
    if error is not None:
        raise error
    return results


def merge_scalar_counts(parts: Sequence[int | float]) -> int | float:
    """Gather a scalar count: the sum of the per-shard partial counts.

    The sum stays an ``int`` when every part is integral (exact back-ends),
    and becomes a ``float`` as soon as any shard answered with DP noise left
    unrounded.
    """
    return sum(parts)


def merge_grouped_counts(parts: Sequence[Mapping]) -> dict:
    """Gather per-group counts: per-key summation, first-appearance order.

    Keys appear in the order shards are visited and, within one shard, in
    that shard's answer order -- a deterministic function of the shard
    contents, which keeps gathered answers reproducible at a fixed seed.
    """
    merged: dict = {}
    for part in parts:
        for key, count in part.items():
            merged[key] = merged.get(key, 0) + count
    return merged


def merge_partial_answers(query: Query, parts: Sequence) -> "int | float | dict":
    """Gather the per-shard partial answers of one scattered query.

    Dispatches on the query shape: group-by answers merge per key
    (:func:`merge_grouped_counts`), scalar counts merge by summation.  Join
    counts never reach this function -- they scatter as two group-by probes
    (:func:`join_side_probes`) whose merged histograms feed
    :func:`join_count_from_histograms`.
    """
    if isinstance(query, (JoinCountQuery, MultiJoinCountQuery)):
        raise TypeError(
            "join counts are gathered from per-side histograms, not merged "
            "per-shard answers"
        )
    if isinstance(query, GroupByCountQuery):
        return merge_grouped_counts(parts)
    if isinstance(query, ModCountQuery):
        # Sum-then-re-mod is the valid homomorphism for modular counts:
        # (a mod m + b mod m) mod m == (a + b) mod m.  Noisy (L-DP) partials
        # stay deterministic under the same rule.
        return merge_scalar_counts(parts) % query.modulus
    return merge_scalar_counts(parts)


def join_count_from_histograms(left: Mapping, right: Mapping) -> "int | float":
    """Join count from global per-side key histograms: ``sum_k L[k] * R[k]``.

    Iterating the smaller histogram keeps the merge ``O(min(|L|, |R|))``
    regardless of how many shards contributed.

    Exact back-ends contribute integral histograms and get an ``int`` back;
    a histogram carrying unrounded DP noise yields a ``float`` -- truncating
    it would silently bias the gathered count toward zero.
    """
    if len(right) < len(left):
        left, right = right, left
    return sum(count * right[key] for key, count in left.items() if key in right)


def join_side_probes(query: JoinCountQuery) -> tuple[GroupByCountQuery, GroupByCountQuery]:
    """The two per-shard probe queries a join count scatters into.

    Each probe is an ordinary group-by-count over one side's join attribute
    (with that side's predicate), so shards evaluate it through their normal
    Query protocol -- dummy-aware rewriting and the columnar fast path
    included -- and the coordinator merges the resulting histograms.
    """
    left = GroupByCountQuery(
        table=query.left_table,
        group_attribute=query.left_attribute,
        predicate=query.left_predicate,
        label=f"{query.name}/scatter-left",
    )
    right = GroupByCountQuery(
        table=query.right_table,
        group_attribute=query.right_attribute,
        predicate=query.right_predicate,
        label=f"{query.name}/scatter-right",
    )
    return left, right


def ordered_join_probes(
    query: JoinCountQuery, first_side: str = "left"
) -> tuple[tuple[GroupByCountQuery, str], tuple[GroupByCountQuery, str]]:
    """The join's side probes in a chosen execution order.

    ``first_side`` names the side to probe first (``"left"`` or ``"right"``,
    e.g. the planner's predicted-smaller side).  Each element pairs the probe
    with its side label so the gather step can put the merged histograms back
    on the correct sides of the dot product.  Because the dot product is
    symmetric and per-shard QET sums both probes, probe order is invisible in
    every observable.
    """
    if first_side not in ("left", "right"):
        raise ValueError(f"first_side must be 'left' or 'right', got {first_side!r}")
    left, right = join_side_probes(query)
    if first_side == "left":
        return (left, "left"), (right, "right")
    return (right, "right"), (left, "left")


def multi_join_probes(query: MultiJoinCountQuery) -> tuple[GroupByCountQuery, ...]:
    """The per-shard probe queries a multi-way star join scatters into.

    One group-by-count probe per join side over that side's key attribute;
    the merged histograms feed :func:`multi_join_count_from_histograms`.
    Probes are labelled by side index so their QET ledger entries stay
    distinguishable.
    """
    return tuple(
        GroupByCountQuery(
            table=table,
            group_attribute=attribute,
            predicate=predicate,
            label=f"{query.name}/scatter-{index}",
        )
        for index, (table, attribute, predicate) in enumerate(query.sides())
    )


def multi_join_count_from_histograms(
    histograms: Sequence[Mapping],
) -> "int | float":
    """Star-join count from global per-side histograms: ``sum_k prod_i H_i[k]``.

    Iterating the smallest histogram's keys keeps the merge
    ``O(min_i |H_i| * m)`` regardless of shard count.  Like the binary case,
    integral histograms yield an ``int`` and unrounded DP noise propagates as
    a ``float``.
    """
    if not histograms:
        raise ValueError("at least one histogram is required")
    base_index = min(range(len(histograms)), key=lambda i: len(histograms[i]))
    base = histograms[base_index]
    others = [h for i, h in enumerate(histograms) if i != base_index]
    total: "int | float" = 0
    for key, count in base.items():
        product = count
        for histogram in others:
            value = histogram.get(key, 0)
            if not value:
                product = 0
                break
            product *= value
        total += product
    return total


def join_upper_bound(
    first_histogram: Mapping, second_side_total: int
) -> "int | float":
    """UES-style upper bound on a join count from the first probe's histogram.

    Every joining pair consumes one record from the first side's filtered
    multiset (cardinality ``sum(first_histogram.values())``) and one of at
    most ``second_side_total`` records on the other side, so the join count
    is at most their product.  The planner records this after the first
    probe's merge to bound (and sanity-check) the second probe's
    contribution; it never changes what executes.
    """
    cardinality = sum(first_histogram.values())
    return cardinality * second_side_total
