"""Composable predicates over records.

Predicates are small immutable objects with an :meth:`evaluate` method; they
are used by filters in query plans, by the dummy-aware query rewriting
(which conjoins ``NotDummyPredicate`` onto existing predicates, Appendix B)
and by the plaintext executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.edb.records import Record

__all__ = [
    "Predicate",
    "TruePredicate",
    "RangePredicate",
    "EqualityPredicate",
    "AndPredicate",
    "OrPredicate",
    "NotPredicate",
    "NotDummyPredicate",
]


class Predicate:
    """Base class for record predicates."""

    def evaluate(self, record: Record) -> bool:
        """Whether ``record`` satisfies the predicate."""
        raise NotImplementedError

    def __call__(self, record: Record) -> bool:
        return self.evaluate(record)

    def __and__(self, other: "Predicate") -> "AndPredicate":
        return AndPredicate((self, other))

    def __or__(self, other: "Predicate") -> "OrPredicate":
        return OrPredicate((self, other))

    def __invert__(self) -> "NotPredicate":
        return NotPredicate(self)


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Predicate satisfied by every record."""

    def evaluate(self, record: Record) -> bool:
        return True


@dataclass(frozen=True)
class RangePredicate(Predicate):
    """``low <= record[attribute] <= high`` (both bounds inclusive)."""

    attribute: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(
                f"range lower bound {self.low} exceeds upper bound {self.high}"
            )

    def evaluate(self, record: Record) -> bool:
        value = record.get(self.attribute)
        if value is None:
            return False
        return self.low <= value <= self.high


@dataclass(frozen=True)
class EqualityPredicate(Predicate):
    """``record[attribute] == value``."""

    attribute: str
    value: Any

    def evaluate(self, record: Record) -> bool:
        return record.get(self.attribute) == self.value


@dataclass(frozen=True)
class AndPredicate(Predicate):
    """Conjunction of child predicates."""

    children: tuple[Predicate, ...]

    def evaluate(self, record: Record) -> bool:
        return all(child.evaluate(record) for child in self.children)


@dataclass(frozen=True)
class OrPredicate(Predicate):
    """Disjunction of child predicates."""

    children: tuple[Predicate, ...]

    def evaluate(self, record: Record) -> bool:
        return any(child.evaluate(record) for child in self.children)


@dataclass(frozen=True)
class NotPredicate(Predicate):
    """Negation of a child predicate."""

    child: Predicate

    def evaluate(self, record: Record) -> bool:
        return not self.child.evaluate(record)


@dataclass(frozen=True)
class NotDummyPredicate(Predicate):
    """``record.isDummy == False`` -- the predicate added by query rewriting."""

    def evaluate(self, record: Record) -> bool:
        return not record.is_dummy
