"""Core differential-privacy mechanisms.

DP-Sync's synchronization strategies are built from three classical
mechanisms:

* the **Laplace mechanism** (used by ``Perturb`` in Algorithm 2 and by the
  initial setup step of both DP strategies),
* the **geometric mechanism**, an integer-valued alternative that is useful
  when the perturbed quantity must stay an integer count (offered as an
  extension; the paper uses rounded Laplace noise),
* the **sparse vector technique / AboveThreshold** (the backbone of DP-ANT,
  Algorithm 3): a stream of noisy counts is compared against a noisy
  threshold and only the *crossing time* is released.

All mechanisms take an explicit :class:`numpy.random.Generator` so that every
experiment in the benchmark harness is reproducible from a single seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "LaplaceBlockStream",
    "LaplaceMechanism",
    "GeometricMechanism",
    "AboveThreshold",
]


class LaplaceBlockStream:
    """Block-predrawn Laplace noise with a draw order identical to its source.

    The synchronization hot loops (DP-Timer's per-window Perturb, DP-ANT's
    per-tick sparse-vector comparison) each make one scalar
    ``Generator.laplace`` call per event; the per-call dispatch overhead
    dominates the actual sampling.  This stream pre-draws *standard* Laplace
    variates in blocks of ``block_size`` and hands them out one at a time,
    scaled on demand.

    Exactness contract (pinned by the golden traces and the bit-identity
    test in ``tests/test_dp_mechanisms.py``): NumPy fills a Laplace array
    from the same underlying bit stream as repeated scalar draws, and a
    ``Laplace(0, scale)`` draw equals ``scale * Laplace(0, 1)`` bit-for-bit
    (the sampler computes ``±scale * log(2u)``, so the multiplication is the
    same single rounding either way).  The k-th value produced through the
    stream therefore equals the k-th value the wrapped generator would have
    produced directly -- for any interleaving of scales -- as long as *all*
    Laplace consumption of that generator goes through the stream.  The
    stream intentionally exposes the ``laplace(loc, scale)`` method surface
    of :class:`numpy.random.Generator` so mechanisms accept either.

    Non-Laplace draws are deliberately not proxied: a strategy mixing
    distributions on one generator must keep using the raw generator, where
    the per-call cost is the price of an exact stream.
    """

    __slots__ = ("_rng", "_block_size", "_block", "_cursor")

    def __init__(self, rng: np.random.Generator, block_size: int = 256) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self._rng = rng
        self._block_size = block_size
        self._block = np.empty(0)
        self._cursor = 0

    @property
    def generator(self) -> np.random.Generator:
        """The wrapped generator (its state runs ahead by the predrawn block)."""
        return self._rng

    def standard(self) -> float:
        """The next standard ``Laplace(0, 1)`` variate."""
        if self._cursor >= self._block.shape[0]:
            self._block = self._rng.laplace(0.0, 1.0, size=self._block_size)
            self._cursor = 0
        value = self._block[self._cursor]
        self._cursor += 1
        return float(value)

    def laplace(self, loc: float = 0.0, scale: float = 1.0) -> float:
        """Drop-in for ``Generator.laplace`` on scalars, served from the block.

        ``loc == 0`` (every DP mechanism here) multiplies the predrawn
        standard variate by ``scale``, which is bit-identical to a direct
        scaled draw; a nonzero ``loc`` adds it afterwards.
        """
        value = scale * self.standard()
        if loc == 0.0:
            return value
        return loc + value


@dataclass
class LaplaceMechanism:
    """The Laplace mechanism for releasing numeric values.

    Parameters
    ----------
    epsilon:
        Privacy budget spent per invocation of :meth:`randomize`.
    sensitivity:
        L1 sensitivity of the value being released (1 for counting queries,
        which is all DP-Sync needs).
    """

    epsilon: float
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {self.sensitivity}")

    @property
    def scale(self) -> float:
        """Laplace scale ``sensitivity / epsilon``."""
        return self.sensitivity / self.epsilon

    def randomize(
        self, value: float, rng: "np.random.Generator | LaplaceBlockStream"
    ) -> float:
        """Return ``value + Lap(sensitivity / epsilon)``."""
        return float(value) + float(rng.laplace(0.0, self.scale))

    def randomize_count(
        self, count: int, rng: "np.random.Generator | LaplaceBlockStream"
    ) -> int:
        """Return a rounded, possibly-negative noisy count.

        DP-Sync's ``Perturb`` operator rounds the noisy count to an integer
        before reading that many records from the local cache; negative values
        are meaningful there (they signal "release nothing"), so no clamping
        happens here.
        """
        return int(round(self.randomize(float(count), rng)))

    def error_quantile(self, beta: float) -> float:
        """Magnitude ``x`` such that ``Pr[|noise| > x] <= beta``."""
        if not 0.0 < beta < 1.0:
            raise ValueError("beta must be in (0, 1)")
        return self.scale * math.log(1.0 / beta)


@dataclass
class GeometricMechanism:
    """Two-sided geometric mechanism for integer counts.

    Adds integer noise with ``Pr[Z = z] ∝ alpha^|z|`` where
    ``alpha = exp(-epsilon / sensitivity)``.  Satisfies epsilon-DP for integer
    valued queries with the given sensitivity and never produces fractional
    counts, which makes it a natural ablation of the rounded-Laplace noise the
    paper uses inside ``Perturb``.
    """

    epsilon: float
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {self.sensitivity}")

    @property
    def alpha(self) -> float:
        """The geometric decay parameter ``exp(-epsilon / sensitivity)``."""
        return math.exp(-self.epsilon / self.sensitivity)

    def sample_noise(self, rng: np.random.Generator) -> int:
        """Draw a two-sided geometric noise value."""
        # A two-sided geometric is the difference of two geometric variables.
        p = 1.0 - self.alpha
        return int(rng.geometric(p) - rng.geometric(p))

    def randomize_count(self, count: int, rng: np.random.Generator) -> int:
        """Return ``count`` plus two-sided geometric noise."""
        return int(count) + self.sample_noise(rng)


@dataclass
class AboveThreshold:
    """Sparse vector technique (AboveThreshold) as used by DP-ANT.

    The mechanism is initialized with a public threshold ``theta`` and a
    privacy budget ``epsilon``.  The budget is split exactly as in
    Algorithm 3 of the paper: the threshold is perturbed with
    ``Lap(2 / epsilon)`` and every per-step query (count of records received
    since the last synchronization) is perturbed with ``Lap(4 / epsilon)``.
    :meth:`step` returns ``True`` when the noisy count crosses the noisy
    threshold, at which point the threshold is refreshed with new noise.

    Only the *crossing times* are data dependent, which is why the whole
    stream of comparisons costs a single ``epsilon`` per crossing (the
    standard sparse-vector argument reproduced in the paper's Theorem 11).

    ``resample_noise`` controls whether the per-step query noise is drawn
    fresh at every comparison (the algorithm as printed in the paper; the
    default) or drawn once per threshold period and held until the next
    crossing.  The held variant fires far less often on sparse streams for
    small budgets and is provided for the noise-resampling ablation; see
    EXPERIMENTS.md for the discussion.
    """

    theta: float
    epsilon: float
    resample_noise: bool = True
    _noisy_threshold: float = field(default=float("nan"), init=False, repr=False)
    _held_noise: float = field(default=0.0, init=False, repr=False)
    _initialized: bool = field(default=False, init=False, repr=False)
    crossings: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.theta < 0:
            raise ValueError(f"theta must be non-negative, got {self.theta}")

    @property
    def threshold_scale(self) -> float:
        """Scale of the noise applied to the threshold (``2 / epsilon``)."""
        return 2.0 / self.epsilon

    @property
    def query_scale(self) -> float:
        """Scale of the per-step query noise (``4 / epsilon``)."""
        return 4.0 / self.epsilon

    @property
    def noisy_threshold(self) -> float:
        """The current noisy threshold (NaN before :meth:`reset`)."""
        return self._noisy_threshold

    def reset(self, rng: "np.random.Generator | LaplaceBlockStream") -> float:
        """Draw a fresh noisy threshold; returns it for inspection."""
        self._noisy_threshold = self.theta + float(
            rng.laplace(0.0, self.threshold_scale)
        )
        self._held_noise = float(rng.laplace(0.0, self.query_scale))
        self._initialized = True
        return self._noisy_threshold

    def step(
        self, count: float, rng: "np.random.Generator | LaplaceBlockStream"
    ) -> bool:
        """Compare a (true) running count against the noisy threshold.

        Adds ``Lap(4 / epsilon)`` noise to ``count`` (fresh per step, or the
        held per-round draw when ``resample_noise`` is false) and returns
        whether the noisy count reaches the noisy threshold.  On a crossing
        the threshold is automatically refreshed (as Algorithm 3 does after
        each synchronization).
        """
        if not self._initialized:
            raise RuntimeError("AboveThreshold.step called before reset()")
        if self.resample_noise:
            noise = float(rng.laplace(0.0, self.query_scale))
        else:
            noise = self._held_noise
        noisy_count = float(count) + noise
        if noisy_count >= self._noisy_threshold:
            self.crossings += 1
            self.reset(rng)
            return True
        return False
