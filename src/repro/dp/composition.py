"""Composition theorems and privacy-budget accounting.

The security proofs of DP-Sync (Theorems 10/11 and their Appendix versions
17/18) decompose the update-pattern mechanism into sub-mechanisms and combine
them with two classical results:

* **Sequential composition** (Lemma 15): running an ``eps1``-DP and an
  ``eps2``-DP mechanism on the *same* data is ``(eps1 + eps2)``-DP.
* **Parallel composition** (Lemma 16): running them on *disjoint* data is
  ``max(eps1, eps2)``-DP.

:class:`PrivacyAccountant` tracks a sequence of spends tagged with the data
partition they touch, so the overall guarantee of a strategy run can be
reported and asserted in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "sequential_composition",
    "parallel_composition",
    "PrivacySpend",
    "PrivacyAccountant",
    "BudgetExceededError",
]


class BudgetExceededError(RuntimeError):
    """Raised when an accountant is asked to spend more than its budget."""


def sequential_composition(epsilons: list[float] | tuple[float, ...]) -> float:
    """Lemma 15: total budget of mechanisms applied to the same data."""
    if any(eps < 0 for eps in epsilons):
        raise ValueError("epsilon values must be non-negative")
    return float(sum(epsilons))


def parallel_composition(epsilons: list[float] | tuple[float, ...]) -> float:
    """Lemma 16: total budget of mechanisms applied to disjoint data."""
    if not epsilons:
        return 0.0
    if any(eps < 0 for eps in epsilons):
        raise ValueError("epsilon values must be non-negative")
    return float(max(epsilons))


@dataclass(frozen=True)
class PrivacySpend:
    """A single privacy expenditure.

    Attributes
    ----------
    epsilon:
        Budget consumed by the mechanism invocation.
    partition:
        Label of the disjoint data partition the mechanism touched.  Spends on
        the *same* partition compose sequentially; spends on *different*
        partitions compose in parallel.  DP-Timer, for example, charges every
        window ``[iT, (i+1)T)`` to its own partition, which is exactly why its
        overall update-pattern guarantee stays at ``epsilon``.
    label:
        Human-readable description (e.g. ``"setup"``, ``"timer-window-3"``).
    """

    epsilon: float
    partition: str
    label: str = ""

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")


@dataclass
class PrivacyAccountant:
    """Tracks update-pattern privacy spends for a strategy run.

    The accountant mirrors the composition structure used in the paper's
    proofs: spends are grouped by partition, summed within a partition
    (sequential composition) and max-ed across partitions (parallel
    composition).

    Parameters
    ----------
    budget:
        Optional overall epsilon bound.  When set, :meth:`spend` raises
        :class:`BudgetExceededError` if the composed guarantee would exceed
        it.  Strategies use this as an internal sanity check: a correct
        DP-Timer or DP-ANT run never exceeds its configured epsilon.
    """

    budget: float | None = None
    _spends: list[PrivacySpend] = field(default_factory=list, init=False)
    # Running sequential totals per partition and their running maximum, so
    # every spend composes in O(1) instead of re-scanning the whole history
    # (the accountant sits on the per-synchronization hot path).
    _partition_totals: dict[str, float] = field(default_factory=dict, init=False)
    _composed: float = field(default=0.0, init=False)

    @property
    def spends(self) -> tuple[PrivacySpend, ...]:
        """All spends recorded so far (read-only view)."""
        return tuple(self._spends)

    def spend(self, epsilon: float, partition: str, label: str = "") -> PrivacySpend:
        """Record a spend of ``epsilon`` against ``partition``."""
        candidate = PrivacySpend(epsilon=epsilon, partition=partition, label=label)
        partition_total = self._partition_totals.get(partition, 0.0) + epsilon
        projected = max(self._composed, partition_total)
        if self.budget is not None and projected > self.budget + 1e-9:
            raise BudgetExceededError(
                f"spending {epsilon} on partition {partition!r} would raise the "
                f"composed guarantee to {projected:.6f} > budget {self.budget}"
            )
        self._spends.append(candidate)
        self._partition_totals[partition] = partition_total
        self._composed = projected
        return candidate

    def per_partition(self) -> dict[str, float]:
        """Sequentially-composed spend per partition."""
        return dict(self._partition_totals)

    def total_epsilon(self) -> float:
        """Overall guarantee: parallel composition across partitions."""
        return self._composed

    def remaining(self) -> float | None:
        """Remaining budget, or ``None`` when no budget is configured."""
        if self.budget is None:
            return None
        return max(0.0, self.budget - self.total_epsilon())

    def reset(self) -> None:
        """Forget all recorded spends."""
        self._spends.clear()
        self._partition_totals.clear()
        self._composed = 0.0
