"""Differential-privacy substrate used by DP-Sync.

This package implements the standard DP building blocks the paper relies on:

* :mod:`repro.dp.laplace` -- the Laplace distribution, its tail bounds and the
  sum-of-Laplace concentration results (Lemma 19, Corollaries 20/21) that back
  the paper's accuracy/performance theorems.
* :mod:`repro.dp.mechanisms` -- the Laplace mechanism, the geometric mechanism
  and the sparse-vector technique (AboveThreshold) used by DP-ANT.
* :mod:`repro.dp.composition` -- sequential and parallel composition
  (Lemmas 15/16) and a privacy-budget accountant.
* :mod:`repro.dp.theory` -- closed-form bounds from Theorems 6-9 and the
  analytic strategy comparison of Table 2.
"""

from repro.dp.laplace import (
    LaplaceDistribution,
    laplace_sum_tail_bound,
    laplace_sum_quantile,
    laplace_tail_bound,
)
from repro.dp.mechanisms import (
    AboveThreshold,
    GeometricMechanism,
    LaplaceMechanism,
)
from repro.dp.composition import (
    BudgetExceededError,
    PrivacyAccountant,
    PrivacySpend,
    parallel_composition,
    sequential_composition,
)
from repro.dp.theory import (
    StrategyBounds,
    ant_logical_gap_bound,
    ant_outsourced_bound,
    strategy_comparison_table,
    timer_logical_gap_bound,
    timer_outsourced_bound,
)

__all__ = [
    "AboveThreshold",
    "BudgetExceededError",
    "GeometricMechanism",
    "LaplaceDistribution",
    "LaplaceMechanism",
    "PrivacyAccountant",
    "PrivacySpend",
    "StrategyBounds",
    "ant_logical_gap_bound",
    "ant_outsourced_bound",
    "laplace_sum_quantile",
    "laplace_sum_tail_bound",
    "laplace_tail_bound",
    "parallel_composition",
    "sequential_composition",
    "strategy_comparison_table",
    "timer_logical_gap_bound",
    "timer_outsourced_bound",
]
