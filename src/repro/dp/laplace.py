"""Laplace distribution utilities and concentration bounds.

The accuracy and performance theorems of DP-Sync (Theorems 6-9) reduce to
concentration statements about sums of independent Laplace random variables.
This module provides:

* :class:`LaplaceDistribution` -- a small, explicit Laplace(b) distribution
  object with sampling, pdf/cdf and quantiles (no scipy dependency so the
  library core only needs numpy).
* :func:`laplace_tail_bound` -- the single-variable tail ``Pr[|Y| >= x]``.
* :func:`laplace_sum_tail_bound` -- Lemma 19 of the paper: for the sum of k
  i.i.d. Laplace(b) variables, ``Pr[Y >= alpha] <= exp(-alpha^2 / (4 k b^2))``
  for ``0 < alpha <= k b``.
* :func:`laplace_sum_quantile` -- Corollary 20: with probability at least
  ``1 - beta`` the sum stays below ``2 b sqrt(k log(1/beta))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "LaplaceDistribution",
    "laplace_tail_bound",
    "laplace_sum_tail_bound",
    "laplace_sum_quantile",
    "max_partial_sum_quantile",
]


@dataclass(frozen=True)
class LaplaceDistribution:
    """Laplace distribution centered at ``loc`` with scale ``scale``.

    The density is ``f(x) = exp(-|x - loc| / scale) / (2 scale)``.
    """

    loc: float = 0.0
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"Laplace scale must be positive, got {self.scale}")

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw one sample (``size is None``) or an array of samples."""
        return rng.laplace(self.loc, self.scale, size=size)

    def pdf(self, x: float) -> float:
        """Probability density at ``x``."""
        return math.exp(-abs(x - self.loc) / self.scale) / (2.0 * self.scale)

    def cdf(self, x: float) -> float:
        """Cumulative distribution function at ``x``."""
        z = (x - self.loc) / self.scale
        if z < 0:
            return 0.5 * math.exp(z)
        return 1.0 - 0.5 * math.exp(-z)

    def quantile(self, p: float) -> float:
        """Inverse CDF for probability ``p`` in (0, 1)."""
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile probability must be in (0, 1), got {p}")
        if p < 0.5:
            return self.loc + self.scale * math.log(2.0 * p)
        return self.loc - self.scale * math.log(2.0 * (1.0 - p))

    @property
    def variance(self) -> float:
        """Variance of the distribution (``2 * scale**2``)."""
        return 2.0 * self.scale**2

    def tail(self, x: float) -> float:
        """``Pr[|Y - loc| >= x]`` for ``x >= 0``."""
        if x < 0:
            raise ValueError("tail threshold must be non-negative")
        return math.exp(-x / self.scale)


def laplace_tail_bound(scale: float, threshold: float) -> float:
    """Exact two-sided tail ``Pr[|Lap(scale)| >= threshold]``.

    This is ``exp(-threshold / scale)`` (Fact 3.7 of Dwork & Roth), used
    repeatedly in the DP-ANT analysis (Theorem 8).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    return math.exp(-threshold / scale)


def laplace_sum_tail_bound(k: int, scale: float, alpha: float) -> float:
    """Lemma 19: Chernoff tail bound for a sum of ``k`` i.i.d. Laplace(scale).

    For ``0 < alpha <= k * scale`` the bound ``exp(-alpha^2 / (4 k scale^2))``
    holds.  For ``alpha > k * scale`` the moment-generating-function argument
    no longer applies directly; we conservatively return the bound evaluated
    at ``alpha = k * scale`` which is still a valid (looser) upper bound on the
    probability, and still decreasing in ``alpha``-monotone usage.
    """
    if k <= 0:
        raise ValueError("k must be a positive integer")
    if scale <= 0:
        raise ValueError("scale must be positive")
    if alpha <= 0:
        return 1.0
    capped = min(alpha, k * scale)
    return math.exp(-(capped**2) / (4.0 * k * scale**2))


def laplace_sum_quantile(k: int, scale: float, beta: float) -> float:
    """Corollary 20: ``alpha`` s.t. ``Pr[sum >= alpha] <= beta``.

    Returns ``2 * scale * sqrt(k * log(1 / beta))``.  The corollary requires
    ``k >= 4 log(1/beta)`` for the bound to lie in the valid Chernoff regime;
    callers that violate this still get the formula value, which simply makes
    the bound conservative.
    """
    if k <= 0:
        raise ValueError("k must be a positive integer")
    if scale <= 0:
        raise ValueError("scale must be positive")
    if not 0.0 < beta < 1.0:
        raise ValueError("beta must be in (0, 1)")
    return 2.0 * scale * math.sqrt(k * math.log(1.0 / beta))


def max_partial_sum_quantile(k: int, scale: float, beta: float) -> float:
    """Corollary 21: bound on ``max_{0<j<=k} S_j`` of Laplace partial sums.

    The same quantity as :func:`laplace_sum_quantile`; the corollary shows the
    maximum over prefixes obeys the same ``2 b sqrt(k log(1/beta))`` bound.
    Exposed under its own name so the DP-Timer logical-gap analysis
    (Theorem 6) reads like the paper.
    """
    return laplace_sum_quantile(k, scale, beta)
