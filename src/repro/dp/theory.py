"""Closed-form accuracy/performance bounds (Theorems 6-9, Table 2).

These functions evaluate the paper's analytical guarantees so that the
benchmark harness can print Table 2 and so that tests can check the empirical
behaviour of the strategies against theory (the bounds are high-probability
upper bounds; tests assert the empirical quantities stay below them with the
expected frequency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dp.laplace import laplace_sum_quantile

__all__ = [
    "timer_logical_gap_bound",
    "timer_outsourced_bound",
    "ant_logical_gap_bound",
    "ant_outsourced_bound",
    "flush_dummy_bound",
    "StrategyBounds",
    "strategy_comparison_table",
]


def timer_logical_gap_bound(epsilon: float, k: int, beta: float) -> float:
    """Theorem 6: DP-Timer logical-gap tail bound ``alpha``.

    With probability at least ``1 - beta`` the logical gap at a time where the
    owner has synchronized ``k`` times is at most
    ``c + 2/eps * sqrt(k log(1/beta))`` where ``c`` counts records received
    since the last update.  This function returns the ``alpha`` term only (the
    data-dependent ``c`` is added by callers).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if k <= 0:
        raise ValueError("k must be a positive integer")
    return laplace_sum_quantile(k, 1.0 / epsilon, beta)


def flush_dummy_bound(t: int, flush_interval: int, flush_size: int) -> int:
    """The ``eta = s * floor(t / f)`` term contributed by the cache flush."""
    if flush_interval <= 0:
        raise ValueError("flush_interval must be positive")
    if flush_size < 0:
        raise ValueError("flush_size must be non-negative")
    if t < 0:
        raise ValueError("t must be non-negative")
    return flush_size * (t // flush_interval)


def timer_outsourced_bound(
    logical_size: int,
    epsilon: float,
    k: int,
    t: int,
    flush_interval: int,
    flush_size: int,
    beta: float,
) -> float:
    """Theorem 7: upper bound on ``|DS_t|`` under DP-Timer.

    ``|DS_t| <= |D_t| + alpha + eta`` with probability at least ``1 - beta``,
    where ``alpha = 2/eps sqrt(k log 1/beta)`` and ``eta = s floor(t/f)``.
    """
    alpha = timer_logical_gap_bound(epsilon, k, beta)
    eta = flush_dummy_bound(t, flush_interval, flush_size)
    return float(logical_size) + alpha + eta


def ant_logical_gap_bound(epsilon: float, t: int, beta: float) -> float:
    """Theorem 8: DP-ANT logical-gap tail bound ``alpha``.

    ``alpha = 16 (log t + log(2 / beta)) / epsilon``; valid for ``t >= 1``.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if t < 1:
        raise ValueError("t must be at least 1")
    if not 0.0 < beta < 1.0:
        raise ValueError("beta must be in (0, 1)")
    return 16.0 * (math.log(t) + math.log(2.0 / beta)) / epsilon


def ant_outsourced_bound(
    logical_size: int,
    epsilon: float,
    t: int,
    flush_interval: int,
    flush_size: int,
    beta: float,
) -> float:
    """Theorem 9: upper bound on ``|DS_t|`` under DP-ANT."""
    alpha = ant_logical_gap_bound(epsilon, t, beta)
    eta = flush_dummy_bound(t, flush_interval, flush_size)
    return float(logical_size) + alpha + eta


@dataclass(frozen=True)
class StrategyBounds:
    """One row of the paper's Table 2 (analytic strategy comparison)."""

    strategy: str
    group_privacy: str
    logical_gap: str
    outsourced_records: str


def strategy_comparison_table() -> list[StrategyBounds]:
    """Return the analytic comparison of synchronization strategies (Table 2).

    The entries are symbolic (strings) because they describe asymptotic
    behaviour; numeric instantiations for given parameters are available via
    the ``*_bound`` functions above.
    """
    return [
        StrategyBounds(
            strategy="SUR",
            group_privacy="inf-DP",
            logical_gap="0",
            outsourced_records="|D_t|",
        ),
        StrategyBounds(
            strategy="OTO",
            group_privacy="0-DP",
            logical_gap="|D_t| - |D_0|",
            outsourced_records="|D_0|",
        ),
        StrategyBounds(
            strategy="SET",
            group_privacy="0-DP",
            logical_gap="0",
            outsourced_records="|D_0| + t",
        ),
        StrategyBounds(
            strategy="DP-Timer",
            group_privacy="eps-DP",
            logical_gap="c_t + O(2*sqrt(k)/eps)",
            outsourced_records="|D_t| + O(2*sqrt(k)/eps) + eta",
        ),
        StrategyBounds(
            strategy="DP-ANT",
            group_privacy="eps-DP",
            logical_gap="c_t + O(16*log(t)/eps)",
            outsourced_records="|D_t| + O(16*log(t)/eps) + eta",
        ),
    ]


def numeric_comparison(
    epsilon: float,
    t: int,
    k: int,
    logical_size: int,
    initial_size: int,
    flush_interval: int,
    flush_size: int,
    beta: float = 0.05,
) -> dict[str, dict[str, float]]:
    """Numeric instantiation of Table 2 for concrete parameters.

    Returns a mapping ``strategy -> {"logical_gap": ..., "outsourced": ...}``
    where the DP rows use the high-probability bounds with failure
    probability ``beta`` (and a zero ``c_t`` term, i.e. measured right after a
    synchronization).
    """
    eta = flush_dummy_bound(t, flush_interval, flush_size)
    timer_alpha = timer_logical_gap_bound(epsilon, max(k, 1), beta)
    ant_alpha = ant_logical_gap_bound(epsilon, max(t, 1), beta)
    return {
        "SUR": {"logical_gap": 0.0, "outsourced": float(logical_size)},
        "OTO": {
            "logical_gap": float(logical_size - initial_size),
            "outsourced": float(initial_size),
        },
        "SET": {"logical_gap": 0.0, "outsourced": float(initial_size + t)},
        "DP-Timer": {
            "logical_gap": timer_alpha,
            "outsourced": float(logical_size) + timer_alpha + eta,
        },
        "DP-ANT": {
            "logical_gap": ant_alpha,
            "outsourced": float(logical_size) + ant_alpha + eta,
        },
    }
