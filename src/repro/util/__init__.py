"""Small shared utilities that several subsystems depend on.

Kept deliberately tiny: anything here is infrastructure (process management,
platform probing) with no knowledge of the paper's domain objects.
"""
