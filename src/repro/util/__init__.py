"""Small shared utilities that several subsystems depend on.

Kept deliberately tiny: anything here is infrastructure (process management,
platform probing, crash-safe file writes) with no knowledge of the paper's
domain objects.
"""

from repro.util.io import atomic_write_bytes, atomic_write_text, fsync_directory

__all__ = ["atomic_write_bytes", "atomic_write_text", "fsync_directory"]
