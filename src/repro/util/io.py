"""Crash-safe file writes.

The checkpoint/manifest pattern used across the repository -- write a temp
file, then ``os.replace`` it over the destination -- is atomic with respect
to concurrent *readers*, but not with respect to power loss: without an
``fsync`` of the file (and of its directory entry) the rename can be made
durable before the data, leaving a torn or empty file after a crash.  These
helpers close that hole:

* the payload is flushed and ``fsync``'d before the rename,
* the rename is made durable by ``fsync``'ing the containing directory,
* a failed write never leaves a partial destination file (the temp file is
  removed on error), and the temp name is deterministic (``<name>.tmp``) so
  a crashed writer's leftover is simply overwritten by the next attempt.

Readers must still tolerate a *leftover temp file* (a crash between the
temp write and the rename) -- they should only ever read the destination
path, which is either the old complete version or the new complete version.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text", "fsync_directory"]


def fsync_directory(path: str | os.PathLike) -> None:
    """Flush a directory entry to disk (best effort on exotic filesystems)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. O_RDONLY on a dir unsupported
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on a dir fd unsupported
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str | os.PathLike, data: bytes, fsync: bool = True
) -> Path:
    """Atomically (and durably) replace ``path`` with ``data``.

    The bytes are written to ``<path>.tmp`` in the same directory, flushed
    and ``fsync``'d, renamed over ``path``, and the rename itself is made
    durable by ``fsync``'ing the directory.  After a crash at any point the
    destination holds either its previous complete contents or the new
    complete contents -- never a torn mix.  ``fsync=False`` skips both sync
    calls for callers that only need reader-atomicity (tests, scratch dirs).
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - nothing to clean up
            pass
        raise
    os.replace(tmp, path)
    if fsync:
        fsync_directory(path.parent)
    return path


def atomic_write_text(
    path: str | os.PathLike, text: str, fsync: bool = True
) -> Path:
    """:func:`atomic_write_bytes` for UTF-8 text."""
    return atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)
