"""Multiprocessing plumbing shared by the grid runner and the shard fleet.

Two pieces of process infrastructure were about to exist twice -- context
selection (the grid runner's pool and the shard-worker processes both want
fork on POSIX with a spawn fallback elsewhere) and affinity-aware CPU
counting (every wall-clock speedup floor gates on it).  This module is the
single copy.
"""

from __future__ import annotations

import multiprocessing
import os
from multiprocessing import shared_memory

__all__ = [
    "preferred_mp_context",
    "usable_cpus",
    "attach_shared_memory",
    "reap_process_segments",
]


def preferred_mp_context(
    prefer: str = "fork",
) -> multiprocessing.context.BaseContext:
    """The multiprocessing context to use: ``prefer`` when available.

    Fork is preferred on POSIX because it transfers already-constructed
    worker state (shard EDBs, RNG streams) by memory inheritance instead of
    pickling; platforms without fork (Windows, some macOS configurations)
    fall back to the platform default (spawn), where the same state is
    pickled exactly once at worker startup.
    """
    try:
        return multiprocessing.get_context(prefer)
    except ValueError:
        return multiprocessing.get_context()


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    The single source of the CPU-detection rule: wall-clock speedup floors
    (process pools, shard fan-out) and the executor footgun warning all gate
    on this, so a future refinement (e.g. cgroup quota awareness) lands in
    one place.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def attach_shared_memory(
    name: str, untrack: bool = True
) -> shared_memory.SharedMemory:
    """Attach to an existing named shared-memory segment without owning it.

    On Python >= 3.13 this is ``SharedMemory(name, track=False)``; on older
    versions attaching also registers the segment with the process-wide
    resource tracker, which would unlink it when *this* process exits even
    though the creating worker still owns it -- so the registration is
    undone immediately.  Either way the caller must :meth:`close` (never
    ``unlink``) the returned handle; unlinking is the creator's job.

    Pass ``untrack=False`` when the *current* process created the segment:
    attaching then re-registers a name the tracker already knows (a no-op),
    and undoing it would cancel the creator's own registration -- losing the
    crash backstop and making the creator's eventual ``unlink`` a double
    unregister.
    """
    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        segment = shared_memory.SharedMemory(name=name, create=False)
        if untrack:
            try:  # pragma: no cover - registry internals differ across versions
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:
                pass
        return segment


def reap_process_segments(pid: int) -> int:
    """Unlink every arena segment a (dead) worker process left behind.

    Arena segment names embed the creating pid
    (``repro-arena-<pid>-...``), so a coordinator can sweep a SIGKILLed
    worker's segments by name.  The killed worker never ran its release
    path, and with the fork start method its resource-tracker registrations
    live in a tracker shared with the coordinator -- which only reaps at
    *coordinator* exit, far too late for a long-lived fleet that keeps
    respawning workers.  Unlinking removes the names immediately; any
    coordinator-side attachment still holding a mapping stays readable
    until it is closed (POSIX shm semantics).

    Returns the number of segments unlinked.  Callers must only pass the
    pid of a process known to be dead.  No-op on platforms without a
    ``/dev/shm`` filesystem (segments then die with the tracker).
    """
    shm_root = "/dev/shm"
    prefix = f"repro-arena-{int(pid)}-"
    try:
        names = os.listdir(shm_root)
    except OSError:  # pragma: no cover - non-Linux
        return 0
    reaped = 0
    for entry in names:
        if entry.startswith(prefix):
            try:
                os.unlink(os.path.join(shm_root, entry))
                reaped += 1
            except OSError:  # pragma: no cover - raced with the tracker
                pass
    return reaped
